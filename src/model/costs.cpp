#include "model/costs.hpp"

#include <algorithm>
#include <vector>

#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/radix.hpp"

namespace bruck::model {

namespace {

void check_common(std::int64_t n, int k, std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
}

}  // namespace

CostMetrics index_bruck_cost(std::int64_t n, std::int64_t r, int k,
                             std::int64_t block_bytes) {
  check_common(n, k, block_bytes);
  BRUCK_REQUIRE_MSG(r >= 2 && r <= std::max<std::int64_t>(2, n),
                    "radix must be in [2, max(2, n)]");
  CostMetrics m;
  if (n == 1) return m;
  const int w = radix_digit_count(n, r);
  for (int x = 0; x < w; ++x) {
    const std::int64_t h = radix_subphase_height(n, r, x);
    // Steps z = 1 .. h−1 of this subphase, grouped k at a time into rounds
    // (Section 3.4: independent steps run concurrently on k ports).
    for (std::int64_t z0 = 1; z0 < h; z0 += k) {
      const std::int64_t z1 = std::min<std::int64_t>(h, z0 + k);
      std::int64_t round_max = 0;
      for (std::int64_t z = z0; z < z1; ++z) {
        const std::int64_t msg =
            block_bytes * radix_digit_census(n, r, x, z);
        round_max = std::max(round_max, msg);
        m.total_bytes += n * msg;  // every rank sends one such message
        m.max_rank_sent += msg;
        m.max_rank_recv += msg;
      }
      m.c1 += 1;
      m.c2 += round_max;
    }
  }
  return m;
}

CostMetrics index_direct_cost(std::int64_t n, int k, std::int64_t block_bytes) {
  check_common(n, k, block_bytes);
  CostMetrics m;
  if (n == 1) return m;
  m.c1 = ceil_div(n - 1, k);
  m.c2 = m.c1 * block_bytes;
  m.total_bytes = n * (n - 1) * block_bytes;
  m.max_rank_sent = (n - 1) * block_bytes;
  m.max_rank_recv = (n - 1) * block_bytes;
  return m;
}

CostMetrics reduce_bruck_cost(std::int64_t n, std::int64_t r, int k,
                              std::int64_t block_bytes) {
  check_common(n, k, block_bytes);
  BRUCK_REQUIRE_MSG(r >= 2 && r <= std::max<std::int64_t>(2, n),
                    "radix must be in [2, max(2, n)]");
  CostMetrics m;
  if (n == 1) return m;
  // Mirrors Plan::lower_reduce_bruck: digits processed high → low, the
  // digit-x step z carries the live slots {z·r^x + t : t < min(r^x, n −
  // z·r^x)}, z-steps grouped k per round.
  const int w = radix_digit_count(n, r);
  std::int64_t dist = 1;
  std::vector<std::int64_t> dists(static_cast<std::size_t>(w));
  for (int x = 0; x < w; ++x) {
    dists[static_cast<std::size_t>(x)] = dist;
    dist *= r;
  }
  for (int x = w - 1; x >= 0; --x) {
    const std::int64_t d = dists[static_cast<std::size_t>(x)];
    const std::int64_t h = radix_subphase_height(n, r, x);
    for (std::int64_t z0 = 1; z0 < h; z0 += k) {
      const std::int64_t z1 = std::min<std::int64_t>(h, z0 + k);
      std::int64_t round_max = 0;
      for (std::int64_t z = z0; z < z1; ++z) {
        const std::int64_t msg =
            block_bytes * std::min<std::int64_t>(d, n - z * d);
        round_max = std::max(round_max, msg);
        m.total_bytes += n * msg;
        m.max_rank_sent += msg;
        m.max_rank_recv += msg;
      }
      m.c1 += 1;
      m.c2 += round_max;
    }
  }
  return m;
}

CostMetrics reduce_direct_cost(std::int64_t n, int k,
                               std::int64_t block_bytes) {
  // n−1 single-block peer messages, k per round — the same schedule shape
  // as direct exchange, with the receives combined instead of stored.
  return index_direct_cost(n, k, block_bytes);
}

CostMetrics index_pairwise_cost(std::int64_t n, int k,
                                std::int64_t block_bytes) {
  check_common(n, k, block_bytes);
  BRUCK_REQUIRE_MSG(is_pow2(n), "pairwise exchange requires a power-of-two n");
  // Identical measures to direct exchange: n−1 peer messages of one block
  // each, k per round; only the pairing pattern (XOR vs. ring offset)
  // differs.
  return index_direct_cost(n, k, block_bytes);
}

namespace {

/// Shape of the concatenation algorithm's schedule for (n, k):
/// d rounds total of which the first d−1 grow the window by ×(k+1),
/// reaching n1 = (k+1)^{d−1} blocks, leaving n2 = n − n1 for the last round.
struct ConcatShape {
  int d = 0;
  std::int64_t n1 = 1;
  std::int64_t n2 = 0;
};

ConcatShape concat_shape(std::int64_t n, int k) {
  ConcatShape s;
  s.d = ceil_log(n, k + 1);
  s.n1 = s.d == 0 ? 1 : ipow(k + 1, s.d - 1);
  s.n2 = n - s.n1;
  return s;
}

/// Greedy byte-split partition bounds: area m covers cell range
/// [m·α, min((m+1)·α, T)) of the column-major b × n2 table, α = ⌈T/k⌉
/// (mirrors topo::byte_split_partition — the duplication is deliberate;
/// tests assert the two stay in agreement).  Returns the maximum
/// column-span over areas (0 if no cells).
std::int64_t greedy_partition_max_span(std::int64_t n2, int k,
                                       std::int64_t b) {
  const std::int64_t total = b * n2;
  if (total == 0) return 0;
  const std::int64_t alpha = ceil_div(total, k);
  std::int64_t max_span = 0;
  for (int area = 0; area < k; ++area) {
    const std::int64_t begin = std::min<std::int64_t>(area * alpha, total);
    const std::int64_t end =
        std::min<std::int64_t>((area + 1) * alpha, total);
    if (begin >= end) continue;
    const std::int64_t first_col = begin / b;
    const std::int64_t last_col = (end - 1) / b;
    max_span = std::max(max_span, last_col - first_col + 1);
  }
  return max_span;
}

}  // namespace

bool concat_byte_split_feasible(std::int64_t n, int k,
                                std::int64_t block_bytes) {
  check_common(n, k, block_bytes);
  if (n == 1 || block_bytes == 0) return true;
  const ConcatShape s = concat_shape(n, k);
  if (s.n2 == 0) return true;
  // The per-area size bound ≤ ⌈b·n2/k⌉ holds by construction of the greedy
  // cuts; only the column-span bound can fail.
  return greedy_partition_max_span(s.n2, k, block_bytes) <= s.n1;
}

bool concat_paper_nonoptimal_range(std::int64_t n, int k,
                                   std::int64_t block_bytes) {
  check_common(n, k, block_bytes);
  if (block_bytes < 3 || k < 3) return false;
  if (n <= 1) return false;
  const int d = ceil_log(n, k + 1);
  const std::int64_t top = ipow(k + 1, d);
  return top - k < n && n < top;
}

ConcatLastRound resolve_concat_last_round(std::int64_t n, int k,
                                          std::int64_t block_bytes,
                                          ConcatLastRound strategy) {
  if (strategy != ConcatLastRound::kAuto) return strategy;
  return concat_byte_split_feasible(n, k, block_bytes)
             ? ConcatLastRound::kByteSplit
             : ConcatLastRound::kColumnGranular;
}

CostMetrics concat_bruck_cost(std::int64_t n, int k, std::int64_t block_bytes,
                              ConcatLastRound strategy) {
  check_common(n, k, block_bytes);
  CostMetrics m;
  if (n == 1) return m;
  strategy = resolve_concat_last_round(n, k, block_bytes, strategy);
  const ConcatShape s = concat_shape(n, k);
  const std::int64_t b = block_bytes;
  // Full rounds i = 0..d−2: each rank sends its whole current window
  // ((k+1)^i blocks) on each of its k ports.
  for (int i = 0; i < s.d - 1; ++i) {
    const std::int64_t msg = b * ipow(k + 1, i);
    m.c1 += 1;
    m.c2 += msg;
    m.total_bytes += n * k * msg;
    m.max_rank_sent += k * msg;
    m.max_rank_recv += k * msg;
  }
  if (s.n2 == 0) return m;  // n = (k+1)^{d-1} exactly; no partial round
  const std::int64_t last_total = b * s.n2;  // bytes each rank still sends
  switch (strategy) {
    case ConcatLastRound::kByteSplit: {
      BRUCK_REQUIRE_MSG(concat_byte_split_feasible(n, k, b),
                        "byte-split partition infeasible for this (n, k, b); "
                        "use kColumnGranular, kTwoRound or kAuto");
      m.c1 += 1;
      m.c2 += ceil_div(last_total, k);
      m.total_bytes += n * last_total;
      m.max_rank_sent += last_total;
      m.max_rank_recv += last_total;
      break;
    }
    case ConcatLastRound::kColumnGranular: {
      m.c1 += 1;
      m.c2 += b * ceil_div(s.n2, k);
      m.total_bytes += n * last_total;
      m.max_rank_sent += last_total;
      m.max_rank_recv += last_total;
      break;
    }
    case ConcatLastRound::kTwoRound: {
      if (s.n2 <= k) {
        // A single round of one whole column per port is already optimal in
        // both measures; no second round is needed.
        m.c1 += 1;
        m.c2 += b;
        m.total_bytes += n * last_total;
        m.max_rank_sent += last_total;
        m.max_rank_recv += last_total;
      } else {
        // Round A: byte-split over the first n2−k columns (always span-
        // feasible, see partition.cpp); round B: one whole column per port.
        const std::int64_t round_a = ceil_div(b * (s.n2 - k), k);
        m.c1 += 2;
        m.c2 += round_a + b;
        m.total_bytes += n * last_total;
        m.max_rank_sent += last_total;
        m.max_rank_recv += last_total;
      }
      break;
    }
    case ConcatLastRound::kAuto:
      BRUCK_ENSURE_MSG(false, "kAuto resolved above");
  }
  return m;
}

CostMetrics concat_folklore_cost(std::int64_t n, std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  CostMetrics m;
  if (n == 1) return m;
  const int d = ceil_log(n, 2);
  // Simulate the pattern rank by rank so the per-rank aggregates match the
  // executed trace exactly.
  std::vector<std::int64_t> have(static_cast<std::size_t>(n), 1);
  std::vector<std::int64_t> sent(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> recv(static_cast<std::size_t>(n), 0);
  // Gather along a binomial tree rooted at rank 0: rank r owns the
  // contiguous segment [r, r + have_r); in round i ranks with
  // r mod 2^{i+1} == 2^i forward their whole segment to r − 2^i.
  for (int i = 0; i < d; ++i) {
    const std::int64_t stride = ipow(2, i);
    std::int64_t round_max = 0;
    for (std::int64_t r = stride; r < n; r += 2 * stride) {
      const std::int64_t msg = have[static_cast<std::size_t>(r)] * block_bytes;
      round_max = std::max(round_max, msg);
      m.total_bytes += msg;
      sent[static_cast<std::size_t>(r)] += msg;
      recv[static_cast<std::size_t>(r - stride)] += msg;
      have[static_cast<std::size_t>(r - stride)] +=
          have[static_cast<std::size_t>(r)];
      have[static_cast<std::size_t>(r)] = 0;
    }
    m.c1 += 1;
    m.c2 += round_max;
  }
  BRUCK_ENSURE(have[0] == n);
  // Broadcast of the full b·n result back down the tree (reverse order).
  const std::int64_t full = n * block_bytes;
  for (int j = 0; j < d; ++j) {
    const std::int64_t stride = ipow(2, d - 1 - j);
    for (std::int64_t r = 0; r + stride < n; r += 2 * stride) {
      m.total_bytes += full;
      sent[static_cast<std::size_t>(r)] += full;
      recv[static_cast<std::size_t>(r + stride)] += full;
    }
    m.c1 += 1;
    m.c2 += full;
  }
  for (std::int64_t r = 0; r < n; ++r) {
    m.max_rank_sent = std::max(m.max_rank_sent, sent[static_cast<std::size_t>(r)]);
    m.max_rank_recv = std::max(m.max_rank_recv, recv[static_cast<std::size_t>(r)]);
  }
  return m;
}

CostMetrics concat_ring_cost(std::int64_t n, std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  CostMetrics m;
  if (n == 1) return m;
  m.c1 = n - 1;
  m.c2 = (n - 1) * block_bytes;
  m.total_bytes = n * (n - 1) * block_bytes;
  m.max_rank_sent = (n - 1) * block_bytes;
  m.max_rank_recv = (n - 1) * block_bytes;
  return m;
}

CostMetrics bcast_circulant_cost(std::int64_t n, int k,
                                 std::int64_t payload_bytes) {
  check_common(n, k, payload_bytes);
  CostMetrics m;
  if (n == 1 || payload_bytes == 0) return m;
  const int d = ceil_log(n, k + 1);
  const std::int64_t n1 = ipow(k + 1, d - 1);
  const std::int64_t n2 = n - n1;
  m.c1 = d;
  m.c2 = d * payload_bytes;
  m.total_bytes = (n - 1) * payload_bytes;  // every non-root receives once
  m.max_rank_recv = payload_bytes;
  // The root sends k children in every growth round plus ⌈n2/n1⌉ in the
  // final round (n2 = 0 only when d = 0); the root is always the busiest.
  const std::int64_t final_children = n2 == 0 ? 0 : ceil_div(n2, n1);
  m.max_rank_sent = (k * (d - 1) + final_children) * payload_bytes;
  return m;
}

CostMetrics bcast_binomial_cost(std::int64_t n, std::int64_t payload_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(payload_bytes >= 0);
  CostMetrics m;
  if (n == 1 || payload_bytes == 0) return m;
  const int d = ceil_log(n, 2);
  m.c1 = d;
  m.c2 = d * payload_bytes;
  m.total_bytes = (n - 1) * payload_bytes;
  m.max_rank_recv = payload_bytes;
  m.max_rank_sent = d * payload_bytes;  // the root sends in every round
  return m;
}

CostMetrics gather_binomial_cost(std::int64_t n, std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  CostMetrics m;
  if (n == 1 || block_bytes == 0) return m;
  const int d = ceil_log(n, 2);
  std::int64_t root_recv = 0;
  for (int i = 0; i < d; ++i) {
    const std::int64_t stride = ipow(2, i);
    // Largest segment forwarded in round i comes from the lowest sender
    // v = 2^i, whose subtree is min(2^i, n − 2^i) blocks.
    const std::int64_t largest =
        std::min<std::int64_t>(stride, n - stride);
    m.c1 += 1;
    m.c2 += largest * block_bytes;
    // Exact totals from the sender set.
    for (std::int64_t v = stride; v < n; v += 2 * stride) {
      const std::int64_t seg = std::min<std::int64_t>(stride, n - v);
      m.total_bytes += seg * block_bytes;
      if (v - stride == 0) root_recv += seg * block_bytes;
    }
  }
  m.max_rank_recv = root_recv;
  // The busiest sender is v = 2^{d−1} (or the largest forwarding node);
  // every rank sends exactly once, so max sent = the largest message.
  std::int64_t max_sent = 0;
  for (int i = 0; i < d; ++i) {
    const std::int64_t stride = ipow(2, i);
    max_sent = std::max(max_sent,
                        std::min<std::int64_t>(stride, n - stride));
  }
  m.max_rank_sent = max_sent * block_bytes;
  return m;
}

CostMetrics scatter_binomial_cost(std::int64_t n, std::int64_t block_bytes) {
  // The exact mirror image of the gather: same rounds, same sizes, with
  // send/receive roles swapped.
  CostMetrics m = gather_binomial_cost(n, block_bytes);
  std::swap(m.max_rank_sent, m.max_rank_recv);
  return m;
}

double layout_pack_us(std::int64_t noncontig_bytes) {
  BRUCK_REQUIRE(noncontig_bytes >= 0);
  return kPackUsPerByte * static_cast<double>(noncontig_bytes);
}

// ---------------------------------------------------------------------------
// Two-level formulas.  Each composes the existing single-level formulas at
// the stage block sizes of the composite lowering; the intra stages are
// priced at the nominal group size g (the critical-path group) and the
// inter stage over G leaders at the padded super-block size.

namespace {

void check_hier(std::int64_t n, int k, std::int64_t group,
                std::int64_t block_bytes) {
  check_common(n, k, block_bytes);
  BRUCK_REQUIRE(group >= 1);
}

}  // namespace

HierCost hier_index_cost(std::int64_t n, int k, std::int64_t group,
                         std::int64_t inter_radix, std::int64_t block_bytes) {
  check_hier(n, k, group, block_bytes);
  HierCost h;
  h.group = std::min(group, n);
  h.groups = ceil_div(n, h.group);
  h.up = gather_binomial_cost(h.group, n * block_bytes);
  if (h.groups > 1) {
    h.inter = index_bruck_cost(h.groups, inter_radix, k,
                               h.group * h.group * block_bytes);
  }
  h.down = scatter_binomial_cost(h.group, n * block_bytes);
  return h;
}

HierCost hier_concat_cost(std::int64_t n, int k, std::int64_t group,
                          std::int64_t block_bytes,
                          ConcatLastRound strategy) {
  check_hier(n, k, group, block_bytes);
  HierCost h;
  h.group = std::min(group, n);
  h.groups = ceil_div(n, h.group);
  h.up = gather_binomial_cost(h.group, block_bytes);
  if (h.groups > 1) {
    const std::int64_t super = h.group * block_bytes;
    h.inter = concat_bruck_cost(
        h.groups, k, super,
        resolve_concat_last_round(h.groups, k, super, strategy));
  }
  h.down = bcast_circulant_cost(h.group, k, n * block_bytes);
  return h;
}

HierCost hier_reduce_cost(std::int64_t n, int k, std::int64_t group,
                          std::int64_t inter_radix,
                          std::int64_t block_bytes) {
  check_hier(n, k, group, block_bytes);
  HierCost h;
  h.group = std::min(group, n);
  h.groups = ceil_div(n, h.group);
  h.up = gather_binomial_cost(h.group, n * block_bytes);
  // Splicing member payloads into the inter-stage accumulator ⊕-combines
  // (g−1) full member contributions at the leader.
  h.local_combine_bytes = (h.group - 1) * n * block_bytes;
  if (h.groups > 1) {
    h.inter =
        reduce_bruck_cost(h.groups, inter_radix, k, h.group * block_bytes);
  }
  h.down = scatter_binomial_cost(h.group, block_bytes);
  return h;
}

}  // namespace bruck::model
