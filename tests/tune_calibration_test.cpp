// The online calibration subsystem (tune::): the micro-exchange ladder
// measures each fabric's real β/τ/γ, every rank ends up with bit-identical
// constants, and the persisted tune table round-trips *bitwise* (including
// a rejected corrupt or mis-versioned file falling back cleanly).
#include "tune/calibrate.hpp"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "model/linear_model.hpp"
#include "model/tuner.hpp"
#include "mps/bootstrap.hpp"
#include "tune/table.hpp"

#include <unistd.h>

namespace bruck {
namespace {

/// Run the ladder on `backend` and ship every rank's measured constants
/// back through the spawn payload: [measured flag byte | β | τ | γ].
std::vector<std::vector<std::byte>> calibrate_payloads(
    mps::FabricBackend backend, std::int64_t n, int k) {
  mps::SpawnOptions so;
  so.n = n;
  so.k = k;
  so.backend = backend;
  so.record_trace = false;
  so.tune = tune::TuneMode::kOff;  // the body drives calibration itself
  const std::string fabric = mps::to_string(backend);
  const mps::SpawnResult run = mps::spawn_local(
      so, [&fabric](mps::Communicator& comm) -> std::vector<std::byte> {
        const tune::Calibration cal = tune::calibrate(comm, fabric);
        std::vector<std::byte> payload(1 + 3 * sizeof(double));
        payload[0] = cal.measured ? std::byte{1} : std::byte{0};
        const double vals[3] = {cal.machine.beta_us,
                                cal.machine.tau_us_per_byte,
                                cal.machine.gamma_us_per_byte};
        std::memcpy(payload.data() + 1, vals, sizeof(vals));
        return payload;
      });
  return run.rank_payloads;
}

/// Rank 0's constants, or nullopt when calibration was skipped.
std::optional<model::LinearModel> measured_model(
    const std::vector<std::vector<std::byte>>& payloads,
    const std::string& name) {
  const std::vector<std::byte>& p0 = payloads.at(0);
  if (p0.size() != 1 + 3 * sizeof(double) || p0[0] != std::byte{1}) {
    return std::nullopt;
  }
  double vals[3] = {};
  std::memcpy(vals, p0.data() + 1, sizeof(vals));
  model::LinearModel m;
  m.name = name;
  m.beta_us = vals[0];
  m.tau_us_per_byte = vals[1];
  m.gamma_us_per_byte = vals[2];
  return m;
}

TEST(Calibration, ThreadFabricMeasuresPositiveConstants) {
  const auto payloads = calibrate_payloads(mps::FabricBackend::kThread, 8, 1);
  const auto m = measured_model(payloads, "thread");
  ASSERT_TRUE(m.has_value());
  EXPECT_GT(m->beta_us, 0.0);
  EXPECT_GT(m->tau_us_per_byte, 0.0);
  EXPECT_GT(m->gamma_us_per_byte, 0.0);
  // Sanity ceiling: a loopback thread fabric's per-message startup is not
  // measured in seconds.
  EXPECT_LT(m->beta_us, 1e6);
}

TEST(Calibration, EveryRankHoldsBitIdenticalConstants) {
  // Rank 0 fits the model and broadcasts the three doubles over a binomial
  // tree: divergent constants would give divergent tuner keys and picks,
  // so the payloads must match *bitwise* across ranks.
  const auto payloads = calibrate_payloads(mps::FabricBackend::kThread, 8, 2);
  ASSERT_EQ(payloads.size(), 8u);
  for (std::size_t r = 1; r < payloads.size(); ++r) {
    EXPECT_EQ(payloads[r], payloads[0]) << "rank " << r;
  }
}

TEST(Calibration, SingleRankSkipsCleanly) {
  const auto payloads = calibrate_payloads(mps::FabricBackend::kThread, 1, 1);
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_FALSE(measured_model(payloads, "solo").has_value());
}

TEST(Calibration, SocketBetaExceedsSharedMemoryFabrics) {
  // The cross-fabric ordering the subsystem exists to detect: the TCP
  // loopback fabric pays per-message syscall + copy costs, so its measured
  // per-message startup must exceed both same-host fabrics'.  Wall-clock
  // measurement on a shared CI host is noisy; take the best of three
  // attempts before declaring the ordering broken.
  bool ordered = false;
  double thread_beta = 0.0, shm_beta = 0.0, socket_beta = 0.0;
  for (int attempt = 0; attempt < 3 && !ordered; ++attempt) {
    const auto thread_m = measured_model(
        calibrate_payloads(mps::FabricBackend::kThread, 4, 1), "thread");
    const auto shm_m = measured_model(
        calibrate_payloads(mps::FabricBackend::kShm, 4, 1), "shm");
    const auto socket_m = measured_model(
        calibrate_payloads(mps::FabricBackend::kSocket, 4, 1), "socket");
    ASSERT_TRUE(thread_m && shm_m && socket_m);
    thread_beta = thread_m->beta_us;
    shm_beta = shm_m->beta_us;
    socket_beta = socket_m->beta_us;
    ordered = socket_beta > shm_beta && socket_beta > thread_beta;
  }
  EXPECT_TRUE(ordered) << "beta us: thread=" << thread_beta
                       << " shm=" << shm_beta << " socket=" << socket_beta;
  // shm vs thread is host-dependent (rings vs mailboxes); report, don't
  // assert.
  std::printf("measured beta us: thread=%g shm=%g socket=%g\n", thread_beta,
              shm_beta, socket_beta);
}

// ---------------------------------------------------------------------------
// The persisted table: bitwise round-trips and strict whole-table rejection.

/// A table whose doubles have no short decimal form — the round-trip must
/// preserve the exact bit patterns, not a printf approximation.
tune::TuneTable adversarial_table() {
  tune::TuneTable table;
  model::LinearModel shm;
  shm.name = "shm";
  shm.beta_us = 0.1 + 0.2;          // 0.30000000000000004
  shm.tau_us_per_byte = 1.0 / 3.0;  // no finite decimal
  shm.gamma_us_per_byte = 5e-324;   // smallest denormal
  table.models["shm"] = shm;
  tune::LearnedEntry e;
  e.query = model::make_tuner_query(model::TunedFamily::kIndexRadix, 64, 2,
                                    4096, shm);
  e.config.radix = 8;
  e.config.segments = 4;
  e.observations = 12;
  e.mean_wall_us = 3.14159265358979312;
  table.learned.push_back(e);
  return table;
}

TEST(TuneTable, SerializeParseRoundTripsBitwise) {
  const tune::TuneTable table = adversarial_table();
  const std::string text = serialize_tune_table(table);
  const auto parsed = tune::parse_tune_table(text);
  ASSERT_TRUE(parsed.has_value());
  // Byte-identical re-serialization is the bitwise guarantee: every double
  // travels as the 16-hex-digit bit pattern.
  EXPECT_EQ(serialize_tune_table(*parsed), text);
  ASSERT_EQ(parsed->learned.size(), 1u);
  EXPECT_EQ(parsed->learned[0].query, table.learned[0].query);
  EXPECT_TRUE(parsed->learned[0].config == table.learned[0].config);
  EXPECT_EQ(model::model_bits(parsed->models.at("shm").gamma_us_per_byte),
            model::model_bits(5e-324));
}

TEST(TuneTable, SaveLoadFileRoundTripsBitwise) {
  const std::string path = "/tmp/bruck_tune_roundtrip_" +
                           std::to_string(::getpid()) + ".table";
  const tune::TuneTable table = adversarial_table();
  ASSERT_TRUE(tune::save_tune_table(table, path));
  const auto loaded = tune::load_tune_table(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(serialize_tune_table(*loaded), serialize_tune_table(table));
  std::remove(path.c_str());
}

TEST(TuneTable, MissingFileIsCleanNullopt) {
  EXPECT_FALSE(tune::load_tune_table("/tmp/bruck_tune_nonexistent_" +
                                     std::to_string(::getpid()))
                   .has_value());
}

TEST(TuneTable, CorruptOrMisversionedTableRejectsWhole) {
  const std::string good = serialize_tune_table(adversarial_table());
  // Version bump: the whole table is rejected, never partially applied.
  std::string bumped = good;
  bumped.replace(bumped.find("v1"), 2, "v2");
  EXPECT_FALSE(tune::parse_tune_table(bumped).has_value());
  // Unknown record kind.
  EXPECT_FALSE(tune::parse_tune_table(good + "mystery 1 2 3\n").has_value());
  // Truncated learned line.
  EXPECT_FALSE(
      tune::parse_tune_table("bruck-tune-table v1\nlearned index-radix 8\n")
          .has_value());
  // Garbage where a hex bit pattern belongs.
  EXPECT_FALSE(tune::parse_tune_table(
                   "bruck-tune-table v1\nmodel shm zz zz zz\n")
                   .has_value());
  // Empty text is not a table (the header line is required).
  EXPECT_FALSE(tune::parse_tune_table("").has_value());

  // A corrupt *file* is a clean nullopt too (plus a one-line warning).
  const std::string path = "/tmp/bruck_tune_corrupt_" +
                           std::to_string(::getpid()) + ".table";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_TRUE(f != nullptr);
    std::fputs("not a tune table at all\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(tune::load_tune_table(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bruck
