// Three-way cross-check for the concatenation algorithms, plus execution-
// level verification of the Theorem 4.3 optimality claims.
#include <gtest/gtest.h>

#include "coll/concat_bruck.hpp"
#include "coll/concat_folklore.hpp"
#include "coll/concat_ring.hpp"
#include "model/costs.hpp"
#include "model/lower_bounds.hpp"
#include <algorithm>

#include "sched/builders_concat.hpp"
#include "test_util.hpp"
#include "util/math.hpp"

namespace bruck {
namespace {

using model::ConcatLastRound;

struct Case {
  std::int64_t n;
  int k;
  std::int64_t b;
  ConcatLastRound strategy;
};

std::string strategy_name(ConcatLastRound s) {
  switch (s) {
    case ConcatLastRound::kByteSplit: return "bytesplit";
    case ConcatLastRound::kColumnGranular: return "colgran";
    case ConcatLastRound::kTwoRound: return "tworound";
    case ConcatLastRound::kAuto: return "auto";
  }
  return "?";
}

std::string case_name(const Case& c) {
  return "n" + std::to_string(c.n) + "_k" + std::to_string(c.k) + "_b" +
         std::to_string(c.b) + "_" + strategy_name(c.strategy);
}

class ConcatCrossCheck : public ::testing::TestWithParam<Case> {};

TEST_P(ConcatCrossCheck, TraceEqualsScheduleEqualsClosedForm) {
  const auto [n, k, b, strategy] = GetParam();
  const testutil::CollRun run = testutil::run_concat(
      n, k, b,
      [&, strat = strategy](mps::Communicator& comm,
                            std::span<const std::byte> send,
                            std::span<std::byte> recv) {
        return coll::concat_bruck(comm, send, recv, b,
                                  coll::ConcatBruckOptions{strat, 0});
      });
  ASSERT_EQ(run.error, "") << case_name(GetParam());

  sched::Schedule executed = run.trace->to_schedule();
  sched::Schedule built = sched::build_concat_bruck(n, k, b, strategy);
  built.normalize();
  EXPECT_TRUE(executed == built)
      << "executed and built schedules differ for " << case_name(GetParam());

  const model::CostMetrics closed = model::concat_bruck_cost(n, k, b, strategy);
  EXPECT_EQ(built.metrics(), closed) << case_name(GetParam());
  EXPECT_EQ(executed.metrics(), closed) << case_name(GetParam());
  EXPECT_EQ(run.rounds_used, closed.c1);
}

std::vector<Case> concat_grid() {
  std::vector<Case> cases;
  for (std::int64_t n : {2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 25, 27, 28, 32}) {
    for (int k : {1, 2, 3, 4}) {
      for (std::int64_t b : {1, 3, 4}) {
        cases.push_back(Case{n, k, b, ConcatLastRound::kAuto});
        cases.push_back(Case{n, k, b, ConcatLastRound::kColumnGranular});
        cases.push_back(Case{n, k, b, ConcatLastRound::kTwoRound});
        if (model::concat_byte_split_feasible(n, k, b)) {
          cases.push_back(Case{n, k, b, ConcatLastRound::kByteSplit});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, ConcatCrossCheck,
                         ::testing::ValuesIn(concat_grid()),
                         [](const auto& pinfo) { return case_name(pinfo.param); });

class FolkloreCrossCheck
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(FolkloreCrossCheck, TraceEqualsScheduleEqualsClosedForm) {
  const auto [n, b] = GetParam();
  const testutil::CollRun run = testutil::run_concat(
      n, 1, b,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::concat_folklore(comm, send, recv, b, {});
      });
  ASSERT_EQ(run.error, "");
  sched::Schedule executed = run.trace->to_schedule();
  sched::Schedule built = sched::build_concat_folklore(n, b);
  built.normalize();
  EXPECT_TRUE(executed == built) << "n=" << n << " b=" << b;
  EXPECT_EQ(executed.metrics(), model::concat_folklore_cost(n, b));
}

INSTANTIATE_TEST_SUITE_P(Grid, FolkloreCrossCheck,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8, 11,
                                                              16, 21, 32),
                                            ::testing::Values(1, 6)),
                         [](const auto& pinfo) {
                           return "n" + std::to_string(std::get<0>(pinfo.param)) +
                                  "_b" + std::to_string(std::get<1>(pinfo.param));
                         });

class RingCrossCheck
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(RingCrossCheck, TraceEqualsScheduleEqualsClosedForm) {
  const auto [n, b] = GetParam();
  const testutil::CollRun run = testutil::run_concat(
      n, 1, b,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::concat_ring(comm, send, recv, b, {});
      });
  ASSERT_EQ(run.error, "");
  sched::Schedule executed = run.trace->to_schedule();
  sched::Schedule built = sched::build_concat_ring(n, b);
  built.normalize();
  EXPECT_TRUE(executed == built);
  EXPECT_EQ(executed.metrics(), model::concat_ring_cost(n, b));
}

INSTANTIATE_TEST_SUITE_P(Grid, RingCrossCheck,
                         ::testing::Combine(::testing::Values(2, 3, 7, 12, 20),
                                            ::testing::Values(1, 9)),
                         [](const auto& pinfo) {
                           return "n" + std::to_string(std::get<0>(pinfo.param)) +
                                  "_b" + std::to_string(std::get<1>(pinfo.param));
                         });

// ---------------------------------------------------------------------------
// Theorem 4.3 at execution level: measured (not just predicted) C1 and C2
// meet the lower bounds wherever the paper claims optimality.

TEST(ConcatExecutedOptimality, MeetsBothLowerBoundsOutsideTheRange) {
  for (std::int64_t n = 2; n <= 30; ++n) {
    for (int k = 1; k <= 4; ++k) {
      for (std::int64_t b : {1, 2, 3}) {
        if (model::concat_paper_nonoptimal_range(n, k, b)) continue;
        const testutil::CollRun run = testutil::run_concat(
            n, k, b,
            [&](mps::Communicator& comm, std::span<const std::byte> send,
                std::span<std::byte> recv) {
              return coll::concat_bruck(comm, send, recv, b, {});
            });
        ASSERT_EQ(run.error, "");
        const model::CostMetrics m = run.trace->metrics();
        EXPECT_EQ(m.c1, model::concat_c1_lower_bound(n, k))
            << "n=" << n << " k=" << k << " b=" << b;
        EXPECT_EQ(m.c2, model::concat_c2_lower_bound(n, k, b))
            << "n=" << n << " k=" << k << " b=" << b;
      }
    }
  }
}

TEST(ConcatExecutedOptimality, Theorem41GrowthPhaseAccounting) {
  // Theorem 4.1: after the first d−1 rounds every node has received exactly
  // the n1 − 1 blocks preceding it, and the growth phase's C2 is the
  // optimal b(n1−1)/k.  Check both on the built schedule's round structure.
  for (std::int64_t n : {5, 9, 13, 17, 26, 27, 40, 64}) {
    for (int k : {1, 2, 3}) {
      const std::int64_t b = 4;
      const sched::Schedule s = sched::build_concat_bruck(
          n, k, b, ConcatLastRound::kColumnGranular);
      const int d = ceil_log(n, k + 1);
      const std::int64_t n1 = ipow(k + 1, d - 1);
      ASSERT_GE(static_cast<int>(s.round_count()), d - 1);
      std::vector<std::int64_t> received(static_cast<std::size_t>(n), 0);
      std::int64_t growth_c2 = 0;
      for (int i = 0; i + 1 < d; ++i) {
        std::int64_t round_max = 0;
        for (const sched::Transfer& t :
             s.rounds()[static_cast<std::size_t>(i)].transfers) {
          received[static_cast<std::size_t>(t.dst)] += t.bytes;
          round_max = std::max(round_max, t.bytes);
        }
        growth_c2 += round_max;
      }
      for (std::int64_t u = 0; u < n; ++u) {
        EXPECT_EQ(received[static_cast<std::size_t>(u)], b * (n1 - 1))
            << "node " << u << " n=" << n << " k=" << k;
      }
      EXPECT_EQ(growth_c2, b * (n1 - 1) / k)
          << "Theorem 4.1's optimal growth-phase volume; n=" << n
          << " k=" << k;
    }
  }
}

TEST(ConcatExecutedOptimality, BaselinesAreDominated) {
  // At k = 1, Bruck matches ring's C2 with exponentially fewer rounds and
  // matches folklore's round order with strictly less volume.
  for (std::int64_t n : {8, 16, 27, 32}) {
    const std::int64_t b = 4;
    const model::CostMetrics bruck = model::concat_bruck_cost(
        n, 1, b, ConcatLastRound::kAuto);
    const model::CostMetrics ring = model::concat_ring_cost(n, b);
    const model::CostMetrics folk = model::concat_folklore_cost(n, b);
    EXPECT_EQ(bruck.c2, ring.c2);
    EXPECT_LT(bruck.c1, ring.c1);
    EXPECT_LT(bruck.c1, folk.c1);
    EXPECT_LT(bruck.c2, folk.c2);
  }
}

}  // namespace
}  // namespace bruck
