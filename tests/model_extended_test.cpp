// The Section 3.5 refined model T = g1·C1·ts + g2·C2·tc + g3 and its
// least-squares calibration.
#include "model/extended_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "model/costs.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bruck::model {
namespace {

std::vector<Observation> synthetic_observations(const LinearModel& base,
                                                double g1, double g2, double g3,
                                                double noise) {
  std::vector<Observation> obs;
  SplitMix64 rng(7);
  for (std::int64_t n : {4, 8, 16, 32, 64}) {
    for (std::int64_t r : {2, 4, 8}) {
      for (std::int64_t b : {16, 256, 2048}) {
        if (r > n) continue;
        Observation o;
        o.metrics = index_bruck_cost(n, r, 1, b);
        const double clean =
            g1 * static_cast<double>(o.metrics.c1) * base.beta_us +
            g2 * static_cast<double>(o.metrics.c2) * base.tau_us_per_byte + g3;
        // Additive bounded noise: multiplicative noise would scale with the
        // dominant C2 column and bias the small-coefficient estimates.
        const double eps =
            noise * (static_cast<double>(rng.next_below(2000)) / 1000.0 - 1.0);
        o.measured_us = clean + eps;
        obs.push_back(o);
      }
    }
  }
  return obs;
}

TEST(ExtendedModel, RecoversExactCoefficientsFromCleanData) {
  const LinearModel base = ibm_sp1();
  const auto obs = synthetic_observations(base, 1.7, 2.3, 55.0, 0.0);
  const ExtendedModel fit = fit_extended_model(base, obs);
  EXPECT_NEAR(fit.g1, 1.7, 1e-9);
  EXPECT_NEAR(fit.g2, 2.3, 1e-9);
  EXPECT_NEAR(fit.g3, 55.0, 1e-6);
  EXPECT_NEAR(r_squared(fit, obs), 1.0, 1e-12);
}

TEST(ExtendedModel, RobustToModestNoise) {
  const LinearModel base = ibm_sp1();
  // ±5 µs additive jitter on observations spanning hundreds of µs.
  const auto obs = synthetic_observations(base, 1.5, 2.0, 10.0, 5.0);
  const ExtendedModel fit = fit_extended_model(base, obs);
  EXPECT_NEAR(fit.g1, 1.5, 0.2);
  EXPECT_NEAR(fit.g2, 2.0, 0.2);
  EXPECT_GT(r_squared(fit, obs), 0.99);
}

TEST(ExtendedModel, PredictReducesToLinearWhenIdentity) {
  const LinearModel base = ibm_sp1();
  const ExtendedModel id{base, 1.0, 1.0, 0.0};
  const CostMetrics m = index_bruck_cost(64, 2, 1, 128);
  EXPECT_DOUBLE_EQ(id.predict_us(m), base.predict_us(m));
}

TEST(ExtendedModel, RejectsDegenerateDesigns) {
  const LinearModel base = ibm_sp1();
  // Fewer than 3 observations.
  std::vector<Observation> two(2);
  EXPECT_THROW(fit_extended_model(base, two), ContractViolation);
  // Identical observations: the design matrix is rank-1.
  Observation o;
  o.metrics = index_bruck_cost(8, 2, 1, 16);
  o.measured_us = 100.0;
  std::vector<Observation> same(5, o);
  EXPECT_THROW(fit_extended_model(base, same), ContractViolation);
}

TEST(ExtendedModel, RSquaredHandlesConstantData) {
  const LinearModel base = ibm_sp1();
  ExtendedModel fit{base, 0.0, 0.0, 42.0};
  Observation o;
  o.metrics = CostMetrics{};
  o.measured_us = 42.0;
  const std::vector<Observation> obs(3, o);
  EXPECT_DOUBLE_EQ(r_squared(fit, obs), 1.0);
}

}  // namespace
}  // namespace bruck::model
