// Regression tests for the PR 4 bugfix sweep.  Each section pins one
// formerly-buggy behavior:
//
//  1. BRUCK_RECV_TIMEOUT_MS parsing accepted garbage — most dangerously,
//     an overflowing digit string silently saturated to LONG_MAX ms,
//     disabling the deadlock timeout entirely.
//  2. PlanKey::shape_digest == 0 is the "uniform plan" sentinel; an
//     irregular shape must never digest to it (the reservation is pinned
//     through the exposed reserve_shape_digest_sentinel seam).
//  3. Segment tuning: a *forced* segment count that the
//     model::kMinSegmentBytes per-message floor would collapse anyway used
//     to key the PlanCache unclamped, caching two plans for one effective
//     execution (forced-vs-tuned aliasing).
//  4. Drain loops applied BRUCK_RECV_TIMEOUT_MS per *step*, not per call:
//     each flushed round (or arriving message) reset the clock, so a slow
//     trickle could stretch one wait far past the configured deadline.
//     Every wait now runs under one DrainDeadline for its whole drain.
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "coll/api.hpp"
#include "coll/plan_cache.hpp"
#include "gtest/gtest.h"
#include "mps/bootstrap.hpp"
#include "mps/runtime.hpp"
#include "mps/thread_comm.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bruck {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// 1. Strict BRUCK_RECV_TIMEOUT_MS parsing.

TEST(RecvTimeoutParsing, RejectsOverflowingValues) {
  // The historical bug: strtol saturates to LONG_MAX with errno == ERANGE,
  // the old check (*end == '\0' && v > 0) passed, and the fabric ran with
  // a ~292-million-year timeout — i.e. no deadlock protection at all.
  EXPECT_FALSE(mps::parse_recv_timeout_ms("99999999999999999999999"));
  EXPECT_FALSE(mps::parse_recv_timeout_ms("-99999999999999999999999"));
}

TEST(RecvTimeoutParsing, RejectsGarbageAndOutOfRange) {
  EXPECT_FALSE(mps::parse_recv_timeout_ms(nullptr));
  EXPECT_FALSE(mps::parse_recv_timeout_ms(""));
  EXPECT_FALSE(mps::parse_recv_timeout_ms("not-a-number"));
  EXPECT_FALSE(mps::parse_recv_timeout_ms("123abc"));  // trailing junk
  EXPECT_FALSE(mps::parse_recv_timeout_ms("1e3"));
  EXPECT_FALSE(mps::parse_recv_timeout_ms("0"));
  EXPECT_FALSE(mps::parse_recv_timeout_ms("-5"));
  // Above the 24 h sanity ceiling: almost certainly a typo'd unit.
  EXPECT_FALSE(mps::parse_recv_timeout_ms(
      std::to_string(mps::kMaxRecvTimeoutMs + 1).c_str()));
}

TEST(RecvTimeoutParsing, AcceptsStrictPositiveIntegers) {
  ASSERT_TRUE(mps::parse_recv_timeout_ms("250"));
  EXPECT_EQ(*mps::parse_recv_timeout_ms("250"), 250ms);
  EXPECT_EQ(*mps::parse_recv_timeout_ms(
                std::to_string(mps::kMaxRecvTimeoutMs).c_str()),
            std::chrono::milliseconds(mps::kMaxRecvTimeoutMs));
}

TEST(RecvTimeoutParsing, InvalidEnvFallsBackToDefault) {
  const char* prior_raw = std::getenv("BRUCK_RECV_TIMEOUT_MS");
  const std::string prior = prior_raw ? prior_raw : "";

  // The overflow regression, end-to-end through the env var.
  ASSERT_EQ(setenv("BRUCK_RECV_TIMEOUT_MS", "99999999999999999999999", 1), 0);
  EXPECT_EQ(mps::default_recv_timeout(), 30000ms);
  ASSERT_EQ(setenv("BRUCK_RECV_TIMEOUT_MS", "5s", 1), 0);
  EXPECT_EQ(mps::default_recv_timeout(), 30000ms);
  ASSERT_EQ(setenv("BRUCK_RECV_TIMEOUT_MS", "4500", 1), 0);
  EXPECT_EQ(mps::default_recv_timeout(), 4500ms);

  if (prior_raw != nullptr) {
    ASSERT_EQ(setenv("BRUCK_RECV_TIMEOUT_MS", prior.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("BRUCK_RECV_TIMEOUT_MS"), 0);
  }
}

// ---------------------------------------------------------------------------
// 1b. Strict BRUCK_FABRIC / fabric-sizing parsing (same seam discipline as
// the timeout knob: whole-string match or rejection + warn-once fallback).

TEST(FabricEnvParsing, BackendAcceptsExactNamesOnly) {
  EXPECT_EQ(mps::parse_fabric_backend("thread"), mps::FabricBackend::kThread);
  EXPECT_EQ(mps::parse_fabric_backend("shm"), mps::FabricBackend::kShm);
  EXPECT_EQ(mps::parse_fabric_backend("socket"), mps::FabricBackend::kSocket);
  EXPECT_FALSE(mps::parse_fabric_backend(nullptr));
  EXPECT_FALSE(mps::parse_fabric_backend(""));
  EXPECT_FALSE(mps::parse_fabric_backend("tcp"));
  EXPECT_FALSE(mps::parse_fabric_backend("Thread"));   // no case folding
  EXPECT_FALSE(mps::parse_fabric_backend("shm "));     // trailing junk
  EXPECT_FALSE(mps::parse_fabric_backend("shm,socket"));
}

TEST(FabricEnvParsing, InvalidBackendFallsBackToThread) {
  const char* prior_raw = std::getenv("BRUCK_FABRIC");
  const std::string prior = prior_raw ? prior_raw : "";

  ASSERT_EQ(setenv("BRUCK_FABRIC", "smh", 1), 0);  // typo'd value
  EXPECT_EQ(mps::default_fabric_backend(), mps::FabricBackend::kThread);
  ASSERT_EQ(setenv("BRUCK_FABRIC", "shm", 1), 0);
  EXPECT_EQ(mps::default_fabric_backend(), mps::FabricBackend::kShm);
  ASSERT_EQ(unsetenv("BRUCK_FABRIC"), 0);
  EXPECT_EQ(mps::default_fabric_backend(), mps::FabricBackend::kThread);

  if (prior_raw != nullptr) {
    ASSERT_EQ(setenv("BRUCK_FABRIC", prior.c_str(), 1), 0);
  }
}

TEST(FabricEnvParsing, ByteCountKnobsRejectOverflowJunkAndOutOfRange) {
  // Same overflow hazard as the timeout knob: strtol saturation must not
  // turn a fat-fingered ring size into "whatever LONG_MAX truncates to".
  EXPECT_FALSE(mps::parse_byte_count("99999999999999999999999", 1, 1 << 30));
  EXPECT_FALSE(mps::parse_byte_count("-99999999999999999999999", 1, 1 << 30));
  EXPECT_FALSE(mps::parse_byte_count(nullptr, 1, 1 << 30));
  EXPECT_FALSE(mps::parse_byte_count("", 1, 1 << 30));
  EXPECT_FALSE(mps::parse_byte_count("1MB", 1, 1 << 30));  // no unit suffixes
  EXPECT_FALSE(mps::parse_byte_count("0x1000", 1, 1 << 30));
  EXPECT_FALSE(mps::parse_byte_count("-1", 1, 1 << 30));
  EXPECT_FALSE(mps::parse_byte_count("4095", 4096, 1 << 30));  // below floor
  EXPECT_FALSE(mps::parse_byte_count("1073741825", 1, 1 << 30));  // above cap
  ASSERT_TRUE(mps::parse_byte_count("65536", 4096, 1 << 30));
  EXPECT_EQ(*mps::parse_byte_count("65536", 4096, 1 << 30), 65536u);
}

TEST(FabricEnvParsing, InvalidRingBytesFallsBackToDefault) {
  const char* prior_raw = std::getenv("BRUCK_SHM_RING_BYTES");
  const std::string prior = prior_raw ? prior_raw : "";

  ASSERT_EQ(setenv("BRUCK_SHM_RING_BYTES", "lots", 1), 0);
  EXPECT_EQ(mps::default_shm_ring_bytes(), std::size_t{1} << 20);
  ASSERT_EQ(setenv("BRUCK_SHM_RING_BYTES", "8192", 1), 0);
  EXPECT_EQ(mps::default_shm_ring_bytes(), 8192u);
  ASSERT_EQ(unsetenv("BRUCK_SHM_RING_BYTES"), 0);
  EXPECT_EQ(mps::default_shm_ring_bytes(), std::size_t{1} << 20);

  if (prior_raw != nullptr) {
    ASSERT_EQ(setenv("BRUCK_SHM_RING_BYTES", prior.c_str(), 1), 0);
  }
}

// ---------------------------------------------------------------------------
// 1c. Strict BRUCK_HIER / BRUCK_HIER_GROUP_SIZE parsing (the hierarchical
// collectives' knobs ride the same seam: whole-string match or rejection +
// warn-once fallback, never a half-parsed value).

TEST(HierEnvParsing, ModeAcceptsExactNamesOnly) {
  EXPECT_EQ(coll::parse_hier_mode("off"), coll::HierMode::kOff);
  EXPECT_EQ(coll::parse_hier_mode("on"), coll::HierMode::kOn);
  EXPECT_EQ(coll::parse_hier_mode("auto"), coll::HierMode::kAuto);
  EXPECT_FALSE(coll::parse_hier_mode(nullptr));
  EXPECT_FALSE(coll::parse_hier_mode(""));
  EXPECT_FALSE(coll::parse_hier_mode("On"));      // no case folding
  EXPECT_FALSE(coll::parse_hier_mode("auto "));   // trailing junk
  EXPECT_FALSE(coll::parse_hier_mode("hier"));
  EXPECT_FALSE(coll::parse_hier_mode("1"));
}

TEST(HierEnvParsing, GroupSizeRejectsOverflowJunkAndOutOfRange) {
  // Same strtol-saturation hazard as the timeout knob.
  EXPECT_FALSE(coll::parse_hier_group("99999999999999999999999"));
  EXPECT_FALSE(coll::parse_hier_group("-99999999999999999999999"));
  EXPECT_FALSE(coll::parse_hier_group(nullptr));
  EXPECT_FALSE(coll::parse_hier_group(""));
  EXPECT_FALSE(coll::parse_hier_group("abc"));
  EXPECT_FALSE(coll::parse_hier_group("8x"));
  EXPECT_FALSE(coll::parse_hier_group("1e3"));
  EXPECT_FALSE(coll::parse_hier_group("-1"));
  EXPECT_FALSE(coll::parse_hier_group("1048577"));  // above the sanity cap
  ASSERT_TRUE(coll::parse_hier_group("0"));         // 0 = tune
  EXPECT_EQ(*coll::parse_hier_group("0"), 0);
  EXPECT_EQ(*coll::parse_hier_group("8"), 8);
  EXPECT_EQ(*coll::parse_hier_group("1048576"), 1048576);
}

TEST(HierEnvParsing, InvalidEnvFallsBackToDefaults) {
  const char* prior_mode_raw = std::getenv("BRUCK_HIER");
  const std::string prior_mode = prior_mode_raw ? prior_mode_raw : "";
  const char* prior_group_raw = std::getenv("BRUCK_HIER_GROUP_SIZE");
  const std::string prior_group = prior_group_raw ? prior_group_raw : "";

  ASSERT_EQ(setenv("BRUCK_HIER", "sometimes", 1), 0);
  EXPECT_EQ(coll::default_hier_mode(), coll::HierMode::kOff);
  ASSERT_EQ(setenv("BRUCK_HIER", "auto", 1), 0);
  EXPECT_EQ(coll::default_hier_mode(), coll::HierMode::kAuto);
  ASSERT_EQ(unsetenv("BRUCK_HIER"), 0);
  EXPECT_EQ(coll::default_hier_mode(), coll::HierMode::kOff);

  ASSERT_EQ(setenv("BRUCK_HIER_GROUP_SIZE", "lots", 1), 0);
  EXPECT_EQ(coll::default_hier_group(), 0);
  ASSERT_EQ(setenv("BRUCK_HIER_GROUP_SIZE", "4", 1), 0);
  EXPECT_EQ(coll::default_hier_group(), 4);
  ASSERT_EQ(unsetenv("BRUCK_HIER_GROUP_SIZE"), 0);
  EXPECT_EQ(coll::default_hier_group(), 0);

  if (prior_mode_raw != nullptr) {
    ASSERT_EQ(setenv("BRUCK_HIER", prior_mode.c_str(), 1), 0);
  }
  if (prior_group_raw != nullptr) {
    ASSERT_EQ(setenv("BRUCK_HIER_GROUP_SIZE", prior_group.c_str(), 1), 0);
  }
}

// ---------------------------------------------------------------------------
// 1d. Strict BRUCK_TUNE_MODE / BRUCK_TUNE_TABLE parsing (the tuning
// subsystem's knobs ride the same seam: whole-string match or rejection +
// warn-once fallback — a typo'd mode must never silently enable adaptive
// exploration, and a mangled table path must never be written to).

TEST(TuneEnvParsing, ModeAcceptsExactNamesOnly) {
  EXPECT_EQ(tune::parse_tune_mode("off"), tune::TuneMode::kOff);
  EXPECT_EQ(tune::parse_tune_mode("calibrate"), tune::TuneMode::kCalibrate);
  EXPECT_EQ(tune::parse_tune_mode("adaptive"), tune::TuneMode::kAdaptive);
  EXPECT_FALSE(tune::parse_tune_mode(nullptr));
  EXPECT_FALSE(tune::parse_tune_mode(""));
  EXPECT_FALSE(tune::parse_tune_mode("default"));  // the sentinel is not env
  EXPECT_FALSE(tune::parse_tune_mode("Adaptive"));  // no case folding
  EXPECT_FALSE(tune::parse_tune_mode("calibrate "));  // trailing junk
  EXPECT_FALSE(tune::parse_tune_mode("cal"));  // no prefixes
  EXPECT_FALSE(tune::parse_tune_mode("off,adaptive"));
}

TEST(TuneEnvParsing, TablePathRejectsEmptyOversizedAndMultiline) {
  ASSERT_TRUE(tune::parse_tune_table_path("/tmp/t.table"));
  EXPECT_EQ(*tune::parse_tune_table_path("/tmp/t.table"), "/tmp/t.table");
  EXPECT_FALSE(tune::parse_tune_table_path(nullptr));
  EXPECT_FALSE(tune::parse_tune_table_path(""));
  // A path with an embedded newline could never round-trip through the
  // line-oriented table format.
  EXPECT_FALSE(tune::parse_tune_table_path("/tmp/a\nb"));
  EXPECT_FALSE(tune::parse_tune_table_path("/tmp/a\rb"));
  const std::string oversized(4097, 'x');
  EXPECT_FALSE(tune::parse_tune_table_path(oversized.c_str()));
}

TEST(TuneEnvParsing, InvalidEnvFallsBackToDefaults) {
  const char* prior_mode_raw = std::getenv("BRUCK_TUNE_MODE");
  const std::string prior_mode = prior_mode_raw ? prior_mode_raw : "";
  const char* prior_table_raw = std::getenv("BRUCK_TUNE_TABLE");
  const std::string prior_table = prior_table_raw ? prior_table_raw : "";

  ASSERT_EQ(setenv("BRUCK_TUNE_MODE", "adaptve", 1), 0);  // typo'd value
  EXPECT_EQ(tune::default_tune_mode(), tune::TuneMode::kOff);
  ASSERT_EQ(setenv("BRUCK_TUNE_MODE", "calibrate", 1), 0);
  EXPECT_EQ(tune::default_tune_mode(), tune::TuneMode::kCalibrate);
  ASSERT_EQ(unsetenv("BRUCK_TUNE_MODE"), 0);
  EXPECT_EQ(tune::default_tune_mode(), tune::TuneMode::kOff);

  ASSERT_EQ(setenv("BRUCK_TUNE_TABLE", "", 1), 0);
  EXPECT_FALSE(tune::default_tune_table_path().has_value());
  ASSERT_EQ(setenv("BRUCK_TUNE_TABLE", "/tmp/bruck.table", 1), 0);
  ASSERT_TRUE(tune::default_tune_table_path().has_value());
  EXPECT_EQ(*tune::default_tune_table_path(), "/tmp/bruck.table");
  ASSERT_EQ(unsetenv("BRUCK_TUNE_TABLE"), 0);
  EXPECT_FALSE(tune::default_tune_table_path().has_value());

  // SpawnOptions' kDefault sentinel resolves through the env; an explicit
  // mode passes through untouched.
  EXPECT_EQ(tune::resolve_tune_mode(tune::TuneMode::kDefault),
            tune::TuneMode::kOff);
  EXPECT_EQ(tune::resolve_tune_mode(tune::TuneMode::kAdaptive),
            tune::TuneMode::kAdaptive);

  if (prior_mode_raw != nullptr) {
    ASSERT_EQ(setenv("BRUCK_TUNE_MODE", prior_mode.c_str(), 1), 0);
  }
  if (prior_table_raw != nullptr) {
    ASSERT_EQ(setenv("BRUCK_TUNE_TABLE", prior_table.c_str(), 1), 0);
  }
}

// ---------------------------------------------------------------------------
// 2. The shape-digest sentinel reservation.

TEST(ShapeDigestSentinel, ZeroHashIsRemappedToOne) {
  // Finding a counts vector whose raw FNV lands on 0 is a 2^64 search, so
  // the reservation is pinned at the seam shape_digest routes through.
  EXPECT_EQ(coll::reserve_shape_digest_sentinel(0), 1u);
  EXPECT_EQ(coll::reserve_shape_digest_sentinel(1), 1u);
  EXPECT_EQ(coll::reserve_shape_digest_sentinel(0xDEADBEEFull), 0xDEADBEEFull);
}

TEST(ShapeDigestSentinel, DigestsNeverCollideWithTheUniformSentinel) {
  SplitMix64 rng(0xD16E57);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = rng.next_below(65);
    std::vector<std::int64_t> counts(len);
    for (std::int64_t& c : counts) {
      // Bias toward the adversarial cases: zeros and tiny buckets.
      c = static_cast<std::int64_t>(rng.next_below(5));
    }
    EXPECT_NE(coll::shape_digest(counts), 0u);
  }
  EXPECT_NE(coll::shape_digest({}), 0u);  // empty shape
  const std::vector<std::int64_t> zeros(64, 0);
  EXPECT_NE(coll::shape_digest(zeros), 0u);  // all-zero counts
}

TEST(ShapeDigestSentinel, IrregularKeysNeverAliasUniformKeys) {
  // Same resolved (algorithm, n, k, radix, segments): the only field
  // separating the irregular key from the uniform one is the digest, so
  // digest == 0 would alias them — the keys must differ for every shape.
  const coll::PlanKey uniform =
      coll::index_plan_key(coll::IndexAlgorithm::kBruck, 8, 2, 2);
  const std::vector<std::int64_t> zeros(64, 0);
  const coll::PlanKey irregular = coll::indexv_plan_key(
      coll::IndexAlgorithm::kBruck, 8, 2, 2, coll::shape_digest(zeros));
  EXPECT_FALSE(uniform == irregular);
  // And the key constructors refuse a zero digest outright.
  EXPECT_THROW(
      coll::indexv_plan_key(coll::IndexAlgorithm::kBruck, 8, 2, 2, 0),
      ContractViolation);
  EXPECT_THROW(coll::concatv_plan_key(coll::ConcatAlgorithm::kBruck, 8, 2, 0),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// 3. Segment floor: forced and tuned counts must resolve — and key the
// PlanCache — identically whenever the per-message floor collapses them.

TEST(SegmentFloor, PickSegmentCountIsOneBelowTheFloor) {
  for (const auto& machine :
       {model::ibm_sp1(), model::startup_dominated(),
        model::bandwidth_dominated()}) {
    for (const std::int64_t bytes : {0ll, 1ll, 64ll, 4095ll}) {
      for (const std::int64_t rounds : {0ll, 1ll, 7ll}) {
        EXPECT_EQ(model::pick_segment_count(machine, rounds, bytes).segments,
                  1)
            << machine.name << " b=" << bytes << " rounds=" << rounds;
      }
    }
  }
}

/// Run one pipelined alltoall on every rank with the given segments knob.
void run_tiny_alltoall(std::int64_t n, int k, std::int64_t b, int segments) {
  mps::run_spmd(n, k, [&](mps::Communicator& comm) {
    std::vector<std::byte> send(static_cast<std::size_t>(n * b),
                                std::byte{1});
    std::vector<std::byte> recv(send.size());
    coll::AlltoallOptions options;
    options.algorithm = coll::IndexAlgorithm::kBruck;
    options.radix = 2;
    options.path = coll::ExecutionPath::kPipelined;
    options.segments = segments;
    coll::alltoall(comm, send, recv, b, options);
  });
}

TEST(SegmentFloor, ForcedAndTunedCountsShareOnePlanAtTinyBlocks) {
  // The regression: at b = 16 every message is far below
  // model::kMinSegmentBytes, so the executor ships one segment regardless —
  // but a forced segments = 8 used to key the cache as S=8 while the tuned
  // pick keyed S=1, caching two plans for one effective execution.
  coll::PlanCache::global().clear();
  const std::int64_t n = 8;
  const int k = 2;
  const std::int64_t b = 16;
  run_tiny_alltoall(n, k, b, /*segments=*/8);   // forced, floor-collapsed
  run_tiny_alltoall(n, k, b, /*segments=*/0);   // tuned
  run_tiny_alltoall(n, k, b, /*segments=*/1);   // explicit off
  const coll::PlanCacheStats stats = coll::PlanCache::global().stats();
  EXPECT_EQ(stats.entries, 1u)
      << "forced/tuned/off segment knobs cached distinct plans for one "
         "geometry";
  EXPECT_EQ(stats.misses, 1u);
}

TEST(SegmentFloor, ForcedCountsSurviveAboveTheFloor) {
  // Sanity: forcing is still honored when the messages are big enough to
  // split — the clamp only removes sub-floor segment counts.
  coll::PlanCache::global().clear();
  const std::int64_t n = 4;
  const int k = 1;
  const std::int64_t b = 1 << 16;
  run_tiny_alltoall(n, k, b, /*segments=*/4);
  run_tiny_alltoall(n, k, b, /*segments=*/1);
  const coll::PlanCacheStats stats = coll::PlanCache::global().stats();
  EXPECT_EQ(stats.entries, 2u);  // S=4 and S=1 are genuinely different
}

TEST(SegmentFloor, AllgatherForcedSegmentsAtTinyBlocksNormalize) {
  // The concat facade used to skip computing predicted metrics on the
  // forced path; the clamp needs them, and forced-vs-tuned must land on
  // one key here too.
  coll::PlanCache::global().clear();
  const std::int64_t n = 6;
  const int k = 2;
  const std::int64_t b = 8;
  for (const int segments : {6, 0, 1}) {
    mps::run_spmd(n, k, [&](mps::Communicator& comm) {
      std::vector<std::byte> send(static_cast<std::size_t>(b), std::byte{2});
      std::vector<std::byte> recv(static_cast<std::size_t>(n * b));
      coll::AllgatherOptions options;
      options.algorithm = coll::ConcatAlgorithm::kBruck;
      options.path = coll::ExecutionPath::kPipelined;
      options.segments = segments;
      coll::allgather(comm, send, recv, b, options);
    });
  }
  EXPECT_EQ(coll::PlanCache::global().stats().entries, 1u);
}

// ---------------------------------------------------------------------------
// 4. One total drain budget per wait call.

/// A wrapper-style communicator whose every exchange() takes `step` of wall
/// time and "completes" its receives locally (zero fill).  Posted through
/// the base class, receives queue in the deferred engine and drain
/// round-by-round through this exchange on wait — each round individually
/// fast enough to slip under a per-step deadline.
class SlowExchangeComm final : public mps::Communicator {
 public:
  explicit SlowExchangeComm(std::chrono::milliseconds step) : step_(step) {}
  [[nodiscard]] std::int64_t rank() const override { return 0; }
  [[nodiscard]] std::int64_t size() const override { return 4; }
  [[nodiscard]] int ports() const override { return 1; }
  void barrier() override {}
  void exchange(int round, std::span<const mps::SendSpec> sends,
                std::span<const mps::RecvSpec> recvs) override {
    (void)round;
    (void)sends;
    std::this_thread::sleep_for(step_);
    for (const mps::RecvSpec& r : recvs) {
      std::fill(r.data.begin(), r.data.end(), std::byte{0});
    }
  }

 private:
  std::chrono::milliseconds step_;
};

TEST(DrainDeadline, WaitAllRecvsIsBoundedByOneTotalBudget) {
  // The regression: six queued rounds at ~120 ms each drained in ~720 ms
  // under a 250 ms timeout, because the old loop re-armed the clock every
  // flushed round (each step made "progress").  One DrainDeadline per wait
  // call means the drain must now throw shortly after 250 ms instead.
  const char* prior_raw = std::getenv("BRUCK_RECV_TIMEOUT_MS");
  const std::string prior = prior_raw ? prior_raw : "";
  ASSERT_EQ(setenv("BRUCK_RECV_TIMEOUT_MS", "250", 1), 0);

  SlowExchangeComm comm(std::chrono::milliseconds(120));
  std::vector<std::vector<std::byte>> bufs(6);
  for (int round = 0; round < 6; ++round) {
    bufs[static_cast<std::size_t>(round)].resize(8);
    (void)comm.post_recv(round, /*src=*/1, bufs[static_cast<std::size_t>(round)]);
  }
  const auto start = std::chrono::steady_clock::now();
  bool threw = false;
  try {
    comm.wait_all_recvs();
  } catch (const ContractViolation& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("exceeded the receive deadline"),
              std::string::npos)
        << e.what();
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(threw) << "drain ran all queued rounds past the deadline";
  // Budget (250) + at most one in-flight round (120), with slack for slow
  // CI — but far below the ~720 ms the pre-fix loop took.
  EXPECT_LT(elapsed.count(), 600);

  if (prior_raw != nullptr) {
    ASSERT_EQ(setenv("BRUCK_RECV_TIMEOUT_MS", prior.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("BRUCK_RECV_TIMEOUT_MS"), 0);
  }
}

}  // namespace
}  // namespace bruck
