// Binomial gather/broadcast trees used by the folklore baseline.
#include "topo/binomial.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::topo {
namespace {

TEST(BinomialGather, EveryNonRootSendsExactlyOnce) {
  for (std::int64_t n = 1; n <= 70; ++n) {
    const auto rounds = binomial_gather_rounds(n);
    EXPECT_EQ(static_cast<int>(rounds.size()), n == 1 ? 0 : ceil_log(n, 2));
    std::set<std::int64_t> senders;
    for (const auto& round : rounds) {
      for (const RoundEdge& e : round) {
        EXPECT_TRUE(senders.insert(e.from).second)
            << "rank " << e.from << " sends twice in gather, n=" << n;
        EXPECT_EQ(e.to, e.from - (e.from & -e.from))
            << "gather parent strips the lowest set bit";
      }
    }
    EXPECT_EQ(static_cast<std::int64_t>(senders.size()), n - 1);
    EXPECT_FALSE(senders.count(0));
  }
}

TEST(BinomialGather, SegmentsAccumulateToN) {
  // Simulating the gather with the declared segment sizes must deliver all
  // n blocks to rank 0.
  for (std::int64_t n = 1; n <= 70; ++n) {
    std::vector<std::int64_t> have(static_cast<std::size_t>(n), 1);
    const auto rounds = binomial_gather_rounds(n);
    for (std::size_t i = 0; i < rounds.size(); ++i) {
      for (const RoundEdge& e : rounds[i]) {
        EXPECT_EQ(binomial_gather_segment(n, e.from, static_cast<int>(i)),
                  have[static_cast<std::size_t>(e.from)])
            << "n=" << n << " round=" << i << " from=" << e.from;
        have[static_cast<std::size_t>(e.to)] +=
            have[static_cast<std::size_t>(e.from)];
        have[static_cast<std::size_t>(e.from)] = 0;
      }
    }
    EXPECT_EQ(have[0], n);
  }
}

TEST(BinomialBroadcast, ReachesEveryRankExactlyOnce) {
  for (std::int64_t n = 1; n <= 70; ++n) {
    const auto rounds = binomial_broadcast_rounds(n);
    std::set<std::int64_t> reached{0};
    for (const auto& round : rounds) {
      std::set<std::int64_t> this_round;
      for (const RoundEdge& e : round) {
        EXPECT_TRUE(reached.count(e.from))
            << "broadcast sender " << e.from << " does not have the data yet";
        EXPECT_TRUE(this_round.insert(e.to).second);
        EXPECT_TRUE(reached.insert(e.to).second)
            << "rank " << e.to << " receives twice";
      }
    }
    EXPECT_EQ(static_cast<std::int64_t>(reached.size()), n);
  }
}

TEST(BinomialBroadcast, IsGatherReversed) {
  // The broadcast edge set is the gather edge set with directions flipped.
  for (std::int64_t n : {1, 2, 3, 7, 8, 21, 64}) {
    std::multiset<std::pair<std::int64_t, std::int64_t>> g, b;
    for (const auto& round : binomial_gather_rounds(n)) {
      for (const RoundEdge& e : round) g.insert({e.to, e.from});
    }
    for (const auto& round : binomial_broadcast_rounds(n)) {
      for (const RoundEdge& e : round) b.insert({e.from, e.to});
    }
    EXPECT_EQ(g, b) << "n=" << n;
  }
}

TEST(BinomialGatherSegment, CapsAtN) {
  EXPECT_EQ(binomial_gather_segment(10, 8, 3), 2);   // [8, 10)
  EXPECT_EQ(binomial_gather_segment(10, 4, 2), 4);   // [4, 8)
  EXPECT_EQ(binomial_gather_segment(10, 9, 0), 1);
  EXPECT_THROW((void)binomial_gather_segment(10, 10, 0), ContractViolation);
}

}  // namespace
}  // namespace bruck::topo
