// Schedule IR: k-port validation, metrics, normalization.
#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace bruck::sched {
namespace {

Schedule tiny_valid() {
  Schedule s(4, 2);
  const std::size_t r0 = s.add_round();
  s.add_transfer(r0, {0, 1, 10});
  s.add_transfer(r0, {1, 0, 20});
  s.add_transfer(r0, {2, 3, 5});
  const std::size_t r1 = s.add_round();
  s.add_transfer(r1, {3, 0, 7});
  return s;
}

TEST(Schedule, ValidPatternPasses) {
  EXPECT_EQ(tiny_valid().validate(), "");
}

TEST(Schedule, MetricsComputeThePaperMeasures) {
  const model::CostMetrics m = tiny_valid().metrics();
  EXPECT_EQ(m.c1, 2);
  EXPECT_EQ(m.c2, 20 + 7);  // max of round 0 plus max of round 1
  EXPECT_EQ(m.total_bytes, 42);
  EXPECT_EQ(m.max_rank_sent, 20);  // rank 1
}

TEST(Schedule, MaxRankRecvAggregatesAcrossRounds) {
  const model::CostMetrics m = tiny_valid().metrics();
  EXPECT_EQ(m.max_rank_recv, 27);  // rank 0: 20 in round 0, 7 in round 1
}

TEST(Schedule, RejectsSelfSend) {
  Schedule s(3, 1);
  s.add_transfer(s.add_round(), {1, 1, 4});
  EXPECT_NE(s.validate().find("self-send"), std::string::npos);
}

TEST(Schedule, RejectsOutOfRangeRanks) {
  Schedule s(3, 1);
  s.add_transfer(s.add_round(), {0, 3, 4});
  EXPECT_NE(s.validate().find("out of range"), std::string::npos);
  Schedule s2(3, 1);
  s2.add_transfer(s2.add_round(), {-1, 0, 4});
  EXPECT_NE(s2.validate().find("out of range"), std::string::npos);
}

TEST(Schedule, RejectsEmptyMessageAndEmptyRound) {
  Schedule s(3, 1);
  s.add_transfer(s.add_round(), {0, 1, 0});
  EXPECT_NE(s.validate().find("at least one byte"), std::string::npos);
  Schedule s2(3, 1);
  s2.add_round();
  EXPECT_NE(s2.validate().find("empty"), std::string::npos);
}

TEST(Schedule, EnforcesKPortsPerRound) {
  // 2 sends by rank 0 in one round with k = 1: invalid.
  Schedule s(4, 1);
  const std::size_t r = s.add_round();
  s.add_transfer(r, {0, 1, 1});
  s.add_transfer(r, {0, 2, 1});
  EXPECT_NE(s.validate().find("send ports"), std::string::npos);
  // Same pattern with k = 2: valid.
  Schedule s2(4, 2);
  const std::size_t r2 = s2.add_round();
  s2.add_transfer(r2, {0, 1, 1});
  s2.add_transfer(r2, {0, 2, 1});
  EXPECT_EQ(s2.validate(), "");
  // Receive side: two messages into rank 2 with k = 1: invalid.
  Schedule s3(4, 1);
  const std::size_t r3 = s3.add_round();
  s3.add_transfer(r3, {0, 2, 1});
  s3.add_transfer(r3, {1, 2, 1});
  EXPECT_NE(s3.validate().find("receive ports"), std::string::npos);
}

TEST(Schedule, SamePairTwicePerRoundIsLegalWithinPorts) {
  // Two distinct messages between the same pair ride two ports — the model
  // allows it (it is how the last concat round splits a block byte-wise).
  Schedule s(2, 2);
  const std::size_t r = s.add_round();
  s.add_transfer(r, {0, 1, 3});
  s.add_transfer(r, {0, 1, 2});
  EXPECT_EQ(s.validate(), "");
  const model::CostMetrics m = s.metrics();
  EXPECT_EQ(m.c1, 1);
  EXPECT_EQ(m.c2, 3);
}

TEST(Schedule, MetricsThrowOnInvalid) {
  Schedule s(3, 1);
  s.add_transfer(s.add_round(), {1, 1, 4});
  EXPECT_THROW((void)s.metrics(), ContractViolation);
}

TEST(Schedule, NormalizeMakesEmissionOrderIrrelevant) {
  Schedule a(3, 2);
  const std::size_t ra = a.add_round();
  a.add_transfer(ra, {0, 1, 5});
  a.add_transfer(ra, {1, 2, 6});
  Schedule b(3, 2);
  const std::size_t rb = b.add_round();
  b.add_transfer(rb, {1, 2, 6});
  b.add_transfer(rb, {0, 1, 5});
  EXPECT_FALSE(a == b);
  a.normalize();
  b.normalize();
  EXPECT_TRUE(a == b);
}

TEST(Schedule, EmptyScheduleIsValidWithZeroMetrics) {
  const Schedule s(5, 2);
  EXPECT_EQ(s.validate(), "");
  EXPECT_EQ(s.metrics(), model::CostMetrics{});
}

TEST(Schedule, RejectsBadConstruction) {
  EXPECT_THROW(Schedule(0, 1), ContractViolation);
  EXPECT_THROW(Schedule(1, 0), ContractViolation);
  Schedule s(2, 1);
  EXPECT_THROW(s.add_transfer(0, {0, 1, 1}), ContractViolation);
}

}  // namespace
}  // namespace bruck::sched
