// Cross-process differential harness: fork real rank processes over the
// shared-memory and TCP-loopback fabrics, run randomized sweeps chaining
// all five collective families (plus the nonblocking i* paths) through one
// communicator, and compare every rank's result payload *bitwise* — and
// the executed trace round-for-round — against the in-process ThreadComm
// oracle running the identical body.
//
// The payload bytes each rank ships home concatenate every collective's
// receive buffer, so a single mismatched byte anywhere in the chain fails
// the trial with the backend and configuration named.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "coll/api.hpp"
#include "coll/verify.hpp"
#include "mps/bootstrap.hpp"
#include "util/rng.hpp"

namespace bruck {
namespace {

struct SweepConfig {
  std::int64_t n = 4;
  int k = 2;
  std::int64_t b = 8;        ///< block bytes of the regular collectives
  std::uint64_t seed = 1;
  int segments = 0;          ///< wire-segmentation knob of the kPipelined path
};

std::byte pattern_byte(std::uint64_t seed, std::int64_t i, std::int64_t j,
                       std::int64_t off) {
  return static_cast<std::byte>((seed * 0x9E3779B9u) ^
                                static_cast<std::uint64_t>(i * 131 + j * 17 + off));
}

/// The SPMD body every backend runs verbatim: all five families chained on
/// one communicator with the round index threaded through, then the
/// nonblocking paths, concatenating every receive buffer into the blob the
/// harness compares across backends.
std::vector<std::byte> sweep_body(mps::Communicator& comm,
                                  const SweepConfig& cfg) {
  const std::int64_t n = comm.size();
  const std::int64_t rank = comm.rank();
  const std::int64_t b = cfg.b;
  std::vector<std::byte> blob;
  const auto append = [&](std::span<const std::byte> bytes) {
    blob.insert(blob.end(), bytes.begin(), bytes.end());
  };

  // 1. alltoall (index family), pipelined with the trial's segment count.
  coll::AlltoallOptions ao;
  ao.segments = cfg.segments;
  std::vector<std::byte> isend(static_cast<std::size_t>(n * b));
  std::vector<std::byte> irecv(isend.size(), std::byte{0xEE});
  coll::fill_index_send(isend, n, rank, b, cfg.seed);
  int round = coll::alltoall(comm, isend, irecv, b, ao);
  append(irecv);

  // 2. allgather (concatenate family).
  coll::AllgatherOptions go;
  go.start_round = round;
  go.segments = cfg.segments;
  std::vector<std::byte> csend(static_cast<std::size_t>(b));
  std::vector<std::byte> crecv(static_cast<std::size_t>(n * b),
                               std::byte{0xEE});
  coll::fill_concat_send(csend, rank, b, cfg.seed + 1);
  round = coll::allgather(comm, csend, crecv, b, go);
  append(crecv);

  // 3. alltoallv with a seed-derived irregular counts matrix (zeros
  // included: zero-count pairs must never touch the fabric).
  SplitMix64 rng(cfg.seed + 2);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n * n));
  for (auto& c : counts) {
    c = static_cast<std::int64_t>(rng.next_below(
        static_cast<std::uint64_t>(3 * b)));
  }
  std::int64_t send_total = 0;
  std::int64_t recv_total = 0;
  for (std::int64_t j = 0; j < n; ++j) {
    send_total += counts[static_cast<std::size_t>(rank * n + j)];
    recv_total += counts[static_cast<std::size_t>(j * n + rank)];
  }
  std::vector<std::byte> vsend(static_cast<std::size_t>(send_total));
  std::vector<std::byte> vrecv(static_cast<std::size_t>(recv_total),
                               std::byte{0xEE});
  {
    std::int64_t off = 0;
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int64_t c = counts[static_cast<std::size_t>(rank * n + j)];
      for (std::int64_t x = 0; x < c; ++x) {
        vsend[static_cast<std::size_t>(off + x)] =
            pattern_byte(cfg.seed, rank, j, x);
      }
      off += c;
    }
  }
  coll::AlltoallvOptions vo;
  vo.start_round = round;
  vo.segments = cfg.segments;
  round = coll::alltoallv(comm, vsend, vrecv, counts, {}, {}, vo);
  append(vrecv);

  // 4. allgatherv with seed-derived per-rank counts.
  std::vector<std::int64_t> gcounts(static_cast<std::size_t>(n));
  for (auto& c : gcounts) {
    c = 1 + static_cast<std::int64_t>(rng.next_below(
            static_cast<std::uint64_t>(2 * b)));
  }
  std::vector<std::byte> gsend(
      static_cast<std::size_t>(gcounts[static_cast<std::size_t>(rank)]));
  for (std::size_t x = 0; x < gsend.size(); ++x) {
    gsend[x] = pattern_byte(cfg.seed + 3, rank, 0,
                            static_cast<std::int64_t>(x));
  }
  const std::int64_t gtotal =
      std::accumulate(gcounts.begin(), gcounts.end(), std::int64_t{0});
  std::vector<std::byte> grecv(static_cast<std::size_t>(gtotal),
                               std::byte{0xEE});
  coll::AllgathervOptions gvo;
  gvo.start_round = round;
  gvo.segments = cfg.segments;
  round = coll::allgatherv(comm, gsend, grecv, gcounts, {}, gvo);
  append(grecv);

  // 5. reduce_scatter + allreduce (reduction family) over i64 sums small
  // enough to stay exact.
  const std::int64_t relems = 1 + (b % 5);
  const std::int64_t rbytes = relems * 8;
  std::vector<std::byte> rsend(static_cast<std::size_t>(n * rbytes));
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t e = 0; e < relems; ++e) {
      const std::int64_t v = rank * 1000 + j * 10 + e +
                             static_cast<std::int64_t>(cfg.seed % 97);
      std::memcpy(rsend.data() + j * rbytes + e * 8, &v, 8);
    }
  }
  std::vector<std::byte> rrecv(static_cast<std::size_t>(rbytes),
                               std::byte{0xEE});
  coll::ReduceScatterOptions ro;
  ro.start_round = round;
  ro.segments = cfg.segments;
  round = coll::reduce_scatter(comm, rsend, rrecv, rbytes,
                               coll::ReduceOp::sum(coll::ReduceElem::kI64),
                               ro);
  append(rrecv);

  std::vector<std::byte> arecv(rsend.size(), std::byte{0xEE});
  coll::AllreduceOptions aro;
  aro.start_round = round;
  aro.segments = cfg.segments;
  round = coll::allreduce(comm, rsend, arecv,
                          coll::ReduceOp::sum(coll::ReduceElem::kI64), aro);
  append(arecv);

  // 6. Nonblocking paths: an ialltoall and an iallgather in flight
  // concurrently (each in its own port-namespace tag), completed out of
  // submission order.
  std::vector<std::byte> nisend(static_cast<std::size_t>(n * b));
  std::vector<std::byte> nirecv(nisend.size(), std::byte{0xEE});
  coll::fill_index_send(nisend, n, rank, b, cfg.seed + 4);
  std::vector<std::byte> ncsend(static_cast<std::size_t>(b));
  std::vector<std::byte> ncrecv(static_cast<std::size_t>(n * b),
                                std::byte{0xEE});
  coll::fill_concat_send(ncsend, rank, b, cfg.seed + 5);
  coll::AlltoallOptions nao;
  nao.segments = cfg.segments;
  coll::AllgatherOptions ngo;
  ngo.segments = cfg.segments;
  coll::Request r1 = coll::ialltoall(comm, nisend, nirecv, b, nao);
  coll::Request r2 = coll::iallgather(comm, ncsend, ncrecv, b, ngo);
  (void)r2.wait();
  (void)r1.wait();
  append(nirecv);
  append(ncrecv);

  return blob;
}

/// Run one configuration on one backend.
mps::SpawnResult run_backend(const SweepConfig& cfg,
                             mps::FabricBackend backend) {
  mps::SpawnOptions so;
  so.n = cfg.n;
  so.k = cfg.k;
  so.backend = backend;
  so.record_trace = true;
  // Fault-free runs should never need the full default 30 s budget; a
  // tighter deadline keeps a genuine hang from eating the suite timeout.
  so.recv_timeout = std::chrono::milliseconds(20000);
  return mps::spawn_local(
      so, [cfg](mps::Communicator& comm) { return sweep_body(comm, cfg); });
}

void expect_backend_matches_oracle(const SweepConfig& cfg,
                                   const mps::SpawnResult& oracle,
                                   mps::FabricBackend backend) {
  const mps::SpawnResult got = run_backend(cfg, backend);
  ASSERT_EQ(got.rank_payloads.size(), oracle.rank_payloads.size());
  for (std::int64_t r = 0; r < cfg.n; ++r) {
    const auto& want = oracle.rank_payloads[static_cast<std::size_t>(r)];
    const auto& have = got.rank_payloads[static_cast<std::size_t>(r)];
    ASSERT_FALSE(want.empty());
    ASSERT_EQ(have.size(), want.size())
        << "rank " << r << " payload size diverged on "
        << mps::to_string(backend);
    ASSERT_TRUE(std::memcmp(have.data(), want.data(), want.size()) == 0)
        << "rank " << r << " payload bytes diverged on "
        << mps::to_string(backend);
  }
  // The executed communication pattern must be the oracle's exactly:
  // same rounds, same messages, same C1/C2.
  ASSERT_TRUE(got.trace != nullptr);
  const sched::Schedule want_sched = oracle.trace->to_schedule();
  const sched::Schedule got_sched = got.trace->to_schedule();
  ASSERT_TRUE(got_sched == want_sched)
      << "executed schedule diverged on " << mps::to_string(backend);
  ASSERT_EQ(got.trace->metrics(), oracle.trace->metrics());
}

TEST(CrossProcess, RandomizedSweepMatchesThreadOracleBitwise) {
  SplitMix64 rng(0xFAB51Cu);
  for (int trial = 0; trial < 4; ++trial) {
    SweepConfig cfg;
    cfg.n = 2 + static_cast<std::int64_t>(rng.next_below(4));  // 2..5 ranks
    cfg.k = 1 + static_cast<int>(rng.next_below(3));
    cfg.b = 1 + static_cast<std::int64_t>(rng.next_below(48));
    cfg.seed = rng.next();
    cfg.segments = static_cast<int>(rng.next_below(3));  // 0 = tuned, 1, 2
    SCOPED_TRACE("trial " + std::to_string(trial) + " n=" +
                 std::to_string(cfg.n) + " k=" + std::to_string(cfg.k) +
                 " b=" + std::to_string(cfg.b) + " segments=" +
                 std::to_string(cfg.segments));
    const mps::SpawnResult oracle =
        run_backend(cfg, mps::FabricBackend::kThread);
    expect_backend_matches_oracle(cfg, oracle, mps::FabricBackend::kShm);
    expect_backend_matches_oracle(cfg, oracle, mps::FabricBackend::kSocket);
  }
}

TEST(CrossProcess, LargerFabricSingleConfig) {
  // One wider fabric (more processes, more connections) as a fixed
  // smoke-point beyond the randomized range.
  SweepConfig cfg;
  cfg.n = 7;
  cfg.k = 2;
  cfg.b = 24;
  cfg.seed = 0xD1FFu;
  cfg.segments = 2;
  const mps::SpawnResult oracle = run_backend(cfg, mps::FabricBackend::kThread);
  expect_backend_matches_oracle(cfg, oracle, mps::FabricBackend::kShm);
  expect_backend_matches_oracle(cfg, oracle, mps::FabricBackend::kSocket);
}

/// The hierarchical leg: all three leader-model composites chained on one
/// communicator with a forced non-dividing group size, so the GroupComm
/// gather/scatter stages and the inter-leader exchange all run over the
/// real fabric under test.
std::vector<std::byte> hier_body(mps::Communicator& comm,
                                 const SweepConfig& cfg, std::int64_t group) {
  const std::int64_t n = comm.size();
  const std::int64_t rank = comm.rank();
  const std::int64_t b = cfg.b;
  std::vector<std::byte> blob;
  const auto append = [&](std::span<const std::byte> bytes) {
    blob.insert(blob.end(), bytes.begin(), bytes.end());
  };

  coll::AlltoallOptions ao;
  ao.hier = coll::HierMode::kOn;
  ao.hier_group = group;
  std::vector<std::byte> isend(static_cast<std::size_t>(n * b));
  std::vector<std::byte> irecv(isend.size(), std::byte{0xEE});
  coll::fill_index_send(isend, n, rank, b, cfg.seed);
  int round = coll::alltoall(comm, isend, irecv, b, ao);
  append(irecv);

  coll::AllgatherOptions go;
  go.hier = coll::HierMode::kOn;
  go.hier_group = group;
  go.start_round = round;
  std::vector<std::byte> csend(static_cast<std::size_t>(b));
  std::vector<std::byte> crecv(static_cast<std::size_t>(n * b),
                               std::byte{0xEE});
  coll::fill_concat_send(csend, rank, b, cfg.seed + 1);
  round = coll::allgather(comm, csend, crecv, b, go);
  append(crecv);

  const std::int64_t rbytes = 16;
  std::vector<std::byte> rsend(static_cast<std::size_t>(n * rbytes));
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t e = 0; e < 2; ++e) {
      const std::int64_t v = rank * 1000 + j * 10 + e;
      std::memcpy(rsend.data() + j * rbytes + e * 8, &v, 8);
    }
  }
  std::vector<std::byte> rrecv(static_cast<std::size_t>(rbytes),
                               std::byte{0xEE});
  coll::ReduceScatterOptions ro;
  ro.hier = coll::HierMode::kOn;
  ro.hier_group = group;
  ro.start_round = round;
  coll::reduce_scatter(comm, rsend, rrecv, rbytes,
                       coll::ReduceOp::sum(coll::ReduceElem::kI64), ro);
  append(rrecv);

  return blob;
}

TEST(CrossProcess, HierarchicalLeaderModelMatchesOracleBitwise) {
  // n = 7 with groups of 3: a smaller last group, idle non-leaders during
  // the inter stage, and sub-communicator stages — on real processes.
  SweepConfig cfg;
  cfg.n = 7;
  cfg.k = 2;
  cfg.b = 12;
  cfg.seed = 0x41E7;
  const std::int64_t group = 3;
  const auto body = [cfg, group](mps::Communicator& comm) {
    return hier_body(comm, cfg, group);
  };
  mps::SpawnOptions so;
  so.n = cfg.n;
  so.k = cfg.k;
  so.record_trace = true;
  so.recv_timeout = std::chrono::milliseconds(20000);

  so.backend = mps::FabricBackend::kThread;
  const mps::SpawnResult oracle = mps::spawn_local(so, body);
  for (const mps::FabricBackend backend :
       {mps::FabricBackend::kShm, mps::FabricBackend::kSocket}) {
    so.backend = backend;
    const mps::SpawnResult got = mps::spawn_local(so, body);
    for (std::int64_t r = 0; r < cfg.n; ++r) {
      const auto& want = oracle.rank_payloads[static_cast<std::size_t>(r)];
      const auto& have = got.rank_payloads[static_cast<std::size_t>(r)];
      ASSERT_FALSE(want.empty());
      ASSERT_EQ(have, want) << "rank " << r << " hierarchical payload "
                            << "diverged on " << mps::to_string(backend);
    }
    ASSERT_TRUE(got.trace->to_schedule() == oracle.trace->to_schedule())
        << "hierarchical schedule diverged on " << mps::to_string(backend);
  }
}

TEST(CrossProcess, ShmBackpressureTinyRing) {
  // Force constant ring wraparound and push backpressure: a ring barely
  // bigger than the minimum must still complete a payload-heavy sweep
  // (the eager-drain path in wire_push is what prevents deadlock).
  SweepConfig cfg;
  cfg.n = 4;
  cfg.k = 2;
  cfg.b = 64;
  cfg.seed = 0xBEEF;
  cfg.segments = 1;
  const mps::SpawnResult oracle = run_backend(cfg, mps::FabricBackend::kThread);

  mps::SpawnOptions so;
  so.n = cfg.n;
  so.k = cfg.k;
  so.backend = mps::FabricBackend::kShm;
  so.record_trace = true;
  so.shm_ring_bytes = 4096;  // minimum ring: max segment 2016 bytes
  so.recv_timeout = std::chrono::milliseconds(20000);
  const mps::SpawnResult got = mps::spawn_local(
      so, [cfg](mps::Communicator& comm) { return sweep_body(comm, cfg); });
  for (std::int64_t r = 0; r < cfg.n; ++r) {
    ASSERT_EQ(got.rank_payloads[static_cast<std::size_t>(r)],
              oracle.rank_payloads[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
  ASSERT_TRUE(got.trace->to_schedule() == oracle.trace->to_schedule());
}

}  // namespace
}  // namespace bruck
