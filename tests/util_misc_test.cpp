// Tests for rng, stats, table and csv utilities.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <vector>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace bruck {
namespace {

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, NextBelowInRange) {
  SplitMix64 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(FillRandomBytes, DeterministicAndLengthExact) {
  std::vector<std::byte> a(37);
  std::vector<std::byte> b(37);
  fill_random_bytes(a, 99);
  fill_random_bytes(b, 99);
  EXPECT_EQ(a, b);
  fill_random_bytes(b, 100);
  EXPECT_NE(a, b);
}

TEST(PayloadByte, DistinguishesCoordinates) {
  // Different (src, block, offset) triples should essentially never agree on
  // all of a handful of bytes; spot-check pairwise distinctness over a grid.
  std::set<std::vector<std::byte>> seen;
  for (std::int64_t src = 0; src < 6; ++src) {
    for (std::int64_t block = 0; block < 6; ++block) {
      std::vector<std::byte> sig;
      for (std::size_t off = 0; off < 8; ++off) {
        sig.push_back(payload_byte(42, src, block, off));
      }
      EXPECT_TRUE(seen.insert(sig).second)
          << "payload collision at src=" << src << " block=" << block;
    }
  }
}

TEST(FillPayload, MatchesPayloadByte) {
  std::vector<std::byte> buf(16);
  fill_payload(buf, 7, 3, 5);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], payload_byte(7, 3, 5, i));
  }
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944487, 1e-9);
}

TEST(Stats, SingleSample) {
  const std::vector<double> v{5.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, Percentile) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 20.0);
  EXPECT_THROW((void)percentile(v, 101.0), ContractViolation);
  EXPECT_THROW((void)summarize(std::vector<double>{}), ContractViolation);
}

TEST(TextTable, AlignsAndRules) {
  TextTable t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22);
  const std::string out = t.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos) << out;
  EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos) << out;
  EXPECT_NE(out.find("| b     |    22 |"), std::string::npos) << out;
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  std::ostringstream os;
  CsvWriter w(os, {"x", "y"});
  w.row({"1", "two,three"});
  EXPECT_EQ(os.str(), "x,y\n1,\"two,three\"\n");
}

}  // namespace
}  // namespace bruck
