// Circulant graphs and the Section 4.1 spanning trees (Figures 7 and 8).
#include "topo/circulant.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::topo {
namespace {

TEST(CirculantGraph, EdgesAndNeighbors) {
  const CirculantGraph g(9, {1, 2});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 8));  // offset −1 wraps
  EXPECT_TRUE(g.has_edge(0, 7));  // offset −2 wraps
  EXPECT_FALSE(g.has_edge(0, 4));
  EXPECT_FALSE(g.has_edge(3, 3));
  EXPECT_EQ(g.neighbors(0), (std::vector<std::int64_t>{1, 2, 7, 8}));
}

TEST(CirculantGraph, DeduplicatesOffsets) {
  const CirculantGraph g(5, {2, 2, 1});
  EXPECT_EQ(g.offsets(), (std::vector<std::int64_t>{1, 2}));
}

TEST(ConcatOffsets, MatchSectionFourDefinition) {
  // S_i = {(k+1)^i, 2(k+1)^i, …, k(k+1)^i}.
  EXPECT_EQ(concat_round_offsets(2, 0), (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(concat_round_offsets(2, 1), (std::vector<std::int64_t>{3, 6}));
  EXPECT_EQ(concat_round_offsets(1, 3), (std::vector<std::int64_t>{8}));
  // n = 9, k = 2: d = 2, S = S_0 = {1, 2}.
  EXPECT_EQ(concat_offset_set(9, 2), (std::vector<std::int64_t>{1, 2}));
  // n = 10, k = 2: d = 3, S = {1, 2} ∪ {3, 6}.
  EXPECT_EQ(concat_offset_set(10, 2), (std::vector<std::int64_t>{1, 2, 3, 6}));
  // d ≤ 1: empty offset set (a single round needs no growth phase).
  EXPECT_TRUE(concat_offset_set(3, 2).empty());
}

TEST(SpanningTree, PaperFigure7) {
  // n = 9 = (k+1)^2, k = 2, root 0 — the full two-round tree of Fig. 7:
  // round 0 adds {(0,1), (0,2)}; round 1 adds
  // {(0,3), (0,6), (1,4), (1,7), (2,5), (2,8)}.
  const auto edges = concat_full_spanning_tree(9, 2, 0);
  ASSERT_EQ(edges.size(), 8u);
  const std::vector<TreeEdge> expected{
      {0, 1, 0}, {0, 2, 0},                                      // round 0
      {0, 3, 1}, {0, 6, 1}, {1, 4, 1}, {1, 7, 1}, {2, 5, 1}, {2, 8, 1}};
  std::multiset<std::tuple<std::int64_t, std::int64_t, int>> got, want;
  for (const TreeEdge& e : edges) got.insert({e.parent, e.child, e.round});
  for (const TreeEdge& e : expected) want.insert({e.parent, e.child, e.round});
  EXPECT_EQ(got, want);
}

TEST(SpanningTree, PaperFigure8TranslationProperty) {
  // T_1 is T_0 with every label shifted by +1 (mod 9).
  const auto t0 = concat_full_spanning_tree(9, 2, 0);
  const auto t1 = concat_full_spanning_tree(9, 2, 1);
  ASSERT_EQ(t0.size(), t1.size());
  std::multiset<std::tuple<std::int64_t, std::int64_t, int>> shifted, got;
  for (const TreeEdge& e : t0) {
    shifted.insert({pos_mod(e.parent + 1, 9), pos_mod(e.child + 1, 9), e.round});
  }
  for (const TreeEdge& e : t1) got.insert({e.parent, e.child, e.round});
  EXPECT_EQ(got, shifted);
}

TEST(SpanningTree, SpansExactlyTheFirstN1Nodes) {
  for (std::int64_t n : {2, 5, 9, 10, 16, 26, 27, 28, 64, 100}) {
    for (int k : {1, 2, 3, 4}) {
      for (std::int64_t root : {std::int64_t{0}, n / 2, n - 1}) {
        const int d = ceil_log(n, k + 1);
        const std::int64_t n1 = ipow(k + 1, d - 1);
        const auto edges = concat_spanning_tree(n, k, root);
        EXPECT_EQ(static_cast<std::int64_t>(edges.size()), n1 - 1)
            << "a tree on n1 nodes has n1−1 edges";
        // Children are exactly root+1 .. root+n1−1, each exactly once.
        std::set<std::int64_t> children;
        for (const TreeEdge& e : edges) {
          EXPECT_TRUE(children.insert(e.child).second)
              << "node " << e.child << " has two parents";
        }
        for (std::int64_t t = 1; t < n1; ++t) {
          EXPECT_TRUE(children.count(pos_mod(root + t, n)))
              << "n=" << n << " k=" << k << " root=" << root << " t=" << t;
        }
        EXPECT_FALSE(children.count(root));
      }
    }
  }
}

TEST(SpanningTree, RoundEdgesUseRoundOffsets) {
  for (std::int64_t n : {9, 27, 64}) {
    for (int k : {1, 2, 3}) {
      const auto edges = concat_spanning_tree(n, k, 0);
      for (const TreeEdge& e : edges) {
        const auto offsets = concat_round_offsets(k, e.round);
        const std::int64_t diff = pos_mod(e.child - e.parent, n);
        EXPECT_NE(std::find(offsets.begin(), offsets.end(), diff),
                  offsets.end())
            << "edge (" << e.parent << "→" << e.child << ") round " << e.round;
      }
    }
  }
}

TEST(SpanningTree, GrowthIsGeometric) {
  // After round i the tree has (k+1)^{i+1} nodes (capped by n1): data can
  // reach at most (k+1)^d nodes in d rounds — the Proposition 2.1 mechanism.
  const std::int64_t n = 64;
  const int k = 3;
  const auto edges = concat_spanning_tree(n, k, 0);
  std::map<int, std::int64_t> per_round;
  for (const TreeEdge& e : edges) per_round[e.round] += 1;
  std::int64_t nodes = 1;
  for (const auto& [round, added] : per_round) {
    EXPECT_EQ(added, nodes * k) << "every node adds k children in round "
                                << round;
    nodes += added;
  }
}

TEST(SpanningTree, ParentsPrecedeChildren) {
  // A node only transmits in round i if it already received the data:
  // its parent edge has a strictly smaller round (root has none).
  const std::int64_t n = 27;
  const int k = 2;
  const auto edges = concat_spanning_tree(n, k, 5);
  std::map<std::int64_t, int> joined;  // node → round it joined
  joined[5] = -1;
  for (const TreeEdge& e : edges) {  // sorted by round
    ASSERT_TRUE(joined.count(e.parent)) << "parent joined earlier";
    EXPECT_LT(joined[e.parent], e.round);
    joined[e.child] = e.round;
  }
}

TEST(SpanningTree, RejectsBadArguments) {
  EXPECT_THROW(concat_spanning_tree(5, 1, 5), ContractViolation);
  EXPECT_THROW(concat_spanning_tree(5, 0, 0), ContractViolation);
  EXPECT_THROW(CirculantGraph(5, {0}), ContractViolation);
  EXPECT_THROW(CirculantGraph(5, {5}), ContractViolation);
  // Full tree only exists for exact powers of k+1.
  EXPECT_THROW(concat_full_spanning_tree(10, 2, 0), ContractViolation);
  EXPECT_NO_THROW((void)concat_full_spanning_tree(27, 2, 3));
}

TEST(SpanningTree, FullTreeSpansAllNodesForExactPowers) {
  for (int k : {1, 2, 3}) {
    for (int d : {1, 2, 3}) {
      const std::int64_t n = ipow(k + 1, d);
      if (n > 64) continue;
      const auto edges = concat_full_spanning_tree(n, k, 0);
      EXPECT_EQ(static_cast<std::int64_t>(edges.size()), n - 1);
      std::set<std::int64_t> covered{0};
      for (const TreeEdge& e : edges) covered.insert(e.child);
      EXPECT_EQ(static_cast<std::int64_t>(covered.size()), n);
    }
  }
}

}  // namespace
}  // namespace bruck::topo
