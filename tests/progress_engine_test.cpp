// Nonblocking collectives through the multi-tenant progress engine:
// single-operation correctness per family, randomized concurrent sweeps of
// 2-8 tagged operations with payload and per-tag trace equality against
// sequential execution, wait_any collection, the serial FIFO fallback on
// exchange-only wrappers, the drop-before-wait destructor contract, and
// same-shape batching (fusion) statistics.
//
// Reduction data is order-exact (small integers in f64), so fused,
// concurrent, and blocking executions are compared bitwise.
#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "coll/api.hpp"
#include "coll/progress.hpp"
#include "coll/verify.hpp"
#include "gtest/gtest.h"
#include "mps/runtime.hpp"
#include "sched/schedule.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace bruck {
namespace {

using coll::AllgatherOptions;
using coll::AllreduceOptions;
using coll::AlltoallOptions;
using coll::AlltoallvOptions;
using coll::ConcatAlgorithm;
using coll::ExecutionPath;
using coll::IndexAlgorithm;
using coll::ProgressEngine;
using coll::ProgressStats;
using coll::ReduceElem;
using coll::ReduceOp;
using coll::ReduceScatterOptions;
using coll::Request;

/// Order-exact f64 test value for (source rank, element id): small
/// integers, so sums are exact in any combine order.
double rs_value(std::int64_t src, std::int64_t idx) {
  SplitMix64 rng(0xFEEDF00Dull +
                 static_cast<std::uint64_t>(src) * 0x9E3779B97F4A7C15ull +
                 static_cast<std::uint64_t>(idx));
  return static_cast<double>(static_cast<std::int64_t>(rng.next() % 201) -
                             100);
}

/// Rank `src`'s reduce-scatter send buffer: n blocks of `elems` doubles,
/// block d element e keyed (src, salt + d * elems + e).
std::vector<std::byte> fill_reduce_send(std::int64_t n, std::int64_t src,
                                        std::int64_t elems,
                                        std::int64_t salt) {
  std::vector<std::byte> out(
      static_cast<std::size_t>(n * elems) * sizeof(double));
  auto* v = reinterpret_cast<double*>(out.data());
  for (std::int64_t i = 0; i < n * elems; ++i) {
    v[i] = rs_value(src, salt + i);
  }
  return out;
}

/// The combined block rank `dst` must end up with.
std::vector<double> expected_reduce_block(std::int64_t n, std::int64_t dst,
                                          std::int64_t elems,
                                          std::int64_t salt) {
  std::vector<double> out(static_cast<std::size_t>(elems), 0.0);
  for (std::int64_t src = 0; src < n; ++src) {
    for (std::int64_t e = 0; e < elems; ++e) {
      out[static_cast<std::size_t>(e)] +=
          rs_value(src, salt + dst * elems + e);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Single operations: each family's nonblocking path delivers the payload
// its blocking twin would, and the engine's books balance.

TEST(ProgressEngine, SingleAlltoallMatchesOracle) {
  const std::int64_t n = 8;
  const int k = 2;
  const std::int64_t b = 64;
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  std::vector<ProgressStats> stats(static_cast<std::size_t>(n));
  mps::RunResult rr = mps::run_spmd(n, k, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> send(static_cast<std::size_t>(n * b));
    std::vector<std::byte> recv(send.size(), std::byte{0xEE});
    coll::fill_index_send(send, n, rank, b, 11);
    Request req = coll::ialltoall(comm, send, recv, b);
    while (!req.test()) {
    }
    EXPECT_TRUE(req.valid());  // a true test() is sticky until wait()
    const int rounds = req.wait();
    EXPECT_GT(rounds, 0);
    EXPECT_FALSE(req.valid());
    errors[static_cast<std::size_t>(rank)] =
        coll::check_index_recv(recv, n, rank, b, 11);
    stats[static_cast<std::size_t>(rank)] =
        ProgressEngine::for_comm(comm).stats();
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");
  for (const ProgressStats& st : stats) {
    EXPECT_EQ(st.submitted, 1u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(st.serial_fallback, 0u);
    EXPECT_EQ(st.tags_used, 1u);
  }
  EXPECT_EQ(rr.trace->to_schedule().validate(), "");
}

TEST(ProgressEngine, SingleAllgatherMatchesOracle) {
  const std::int64_t n = 7;
  const std::int64_t b = 48;
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  mps::run_spmd(n, 2, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> send(static_cast<std::size_t>(b));
    std::vector<std::byte> recv(static_cast<std::size_t>(n * b),
                                std::byte{0xEE});
    coll::fill_concat_send(send, rank, b, 12);
    Request req = coll::iallgather(comm, send, recv, b);
    (void)req.wait();
    errors[static_cast<std::size_t>(rank)] =
        coll::check_concat_recv(recv, n, b, 12);
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");
}

TEST(ProgressEngine, SingleReduceScatterMatchesExpectation) {
  const std::int64_t n = 6;
  const std::int64_t elems = 9;
  const std::int64_t b = elems * static_cast<std::int64_t>(sizeof(double));
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  mps::run_spmd(n, 2, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    const std::vector<std::byte> send = fill_reduce_send(n, rank, elems, 0);
    std::vector<std::byte> recv(static_cast<std::size_t>(b), std::byte{0xEE});
    Request req = coll::ireduce_scatter(comm, send, recv, b,
                                        ReduceOp::sum(ReduceElem::kF64));
    (void)req.wait();
    const std::vector<double> want = expected_reduce_block(n, rank, elems, 0);
    if (std::memcmp(recv.data(), want.data(), recv.size()) != 0) {
      errors[static_cast<std::size_t>(rank)] = "reduce_scatter mismatch";
    }
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");
}

TEST(ProgressEngine, SingleAllreduceMatchesExpectation) {
  const std::int64_t n = 6;
  const std::int64_t elems = 13;  // pads: 13 = 6*3 - 5, exercises the tail
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  mps::run_spmd(n, 2, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> send(static_cast<std::size_t>(elems) *
                                sizeof(double));
    auto* sv = reinterpret_cast<double*>(send.data());
    for (std::int64_t i = 0; i < elems; ++i) sv[i] = rs_value(rank, i);
    std::vector<std::byte> recv(send.size(), std::byte{0xEE});
    Request req =
        coll::iallreduce(comm, send, recv, ReduceOp::sum(ReduceElem::kF64));
    (void)req.wait();
    std::vector<double> want(static_cast<std::size_t>(elems), 0.0);
    for (std::int64_t src = 0; src < n; ++src) {
      for (std::int64_t e = 0; e < elems; ++e) {
        want[static_cast<std::size_t>(e)] += rs_value(src, e);
      }
    }
    if (std::memcmp(recv.data(), want.data(), recv.size()) != 0) {
      errors[static_cast<std::size_t>(rank)] = "allreduce mismatch";
    }
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");
}

TEST(ProgressEngine, SingleAlltoallvMatchesBlockingTwin) {
  const std::int64_t n = 6;
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n * n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      counts[static_cast<std::size_t>(i * n + j)] = ((i * 7 + j * 3) % 5) * 4;
    }
  }
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  mps::run_spmd(n, 2, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::int64_t send_bytes = 0;
    std::int64_t recv_bytes = 0;
    for (std::int64_t j = 0; j < n; ++j) {
      send_bytes += counts[static_cast<std::size_t>(rank * n + j)];
      recv_bytes += counts[static_cast<std::size_t>(j * n + rank)];
    }
    std::vector<std::byte> send(static_cast<std::size_t>(send_bytes));
    for (std::size_t i = 0; i < send.size(); ++i) {
      send[i] = static_cast<std::byte>((rank * 131 + static_cast<std::int64_t>(i)) & 0xFF);
    }
    std::vector<std::byte> recv_nb(static_cast<std::size_t>(recv_bytes),
                                   std::byte{0xEE});
    std::vector<std::byte> recv_b(recv_nb.size(), std::byte{0xDD});
    Request req = coll::ialltoallv(comm, send, recv_nb, counts);
    const int rounds_nb = req.wait();
    AlltoallvOptions blocking;
    blocking.start_round = rounds_nb;  // tag 0 rounds stay monotonic
    coll::alltoallv(comm, send, recv_b, counts, {}, {}, blocking);
    if (recv_nb != recv_b) {
      errors[static_cast<std::size_t>(rank)] =
          "nonblocking and blocking alltoallv payloads differ";
    }
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");
}

// ---------------------------------------------------------------------------
// Concurrency: several outstanding tagged operations on one communicator.

TEST(ProgressEngine, ConcurrentTracePerTagMatchesSoloRuns) {
  // Three interleaved collectives; each tag's executed sub-trace must be
  // exactly the trace a solo blocking (pipelined) run of that operation
  // produces.
  const std::int64_t n = 9;
  const int k = 2;
  const std::int64_t b0 = 24, b1 = 16, b2 = 40;
  const std::uint64_t s0 = 101, s1 = 102, s2 = 103;
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  mps::RunResult rr = mps::run_spmd(n, k, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> send0(static_cast<std::size_t>(n * b0));
    std::vector<std::byte> recv0(send0.size(), std::byte{0xEE});
    std::vector<std::byte> send1(static_cast<std::size_t>(b1));
    std::vector<std::byte> recv1(static_cast<std::size_t>(n * b1),
                                 std::byte{0xEE});
    std::vector<std::byte> send2(static_cast<std::size_t>(n * b2));
    std::vector<std::byte> recv2(send2.size(), std::byte{0xEE});
    coll::fill_index_send(send0, n, rank, b0, s0);
    coll::fill_concat_send(send1, rank, b1, s1);
    coll::fill_index_send(send2, n, rank, b2, s2);
    std::array<Request, 3> reqs = {coll::ialltoall(comm, send0, recv0, b0),
                                   coll::iallgather(comm, send1, recv1, b1),
                                   coll::ialltoall(comm, send2, recv2, b2)};
    coll::wait_all(reqs);
    std::string e = coll::check_index_recv(recv0, n, rank, b0, s0);
    if (e.empty()) e = coll::check_concat_recv(recv1, n, b1, s1);
    if (e.empty()) e = coll::check_index_recv(recv2, n, rank, b2, s2);
    errors[static_cast<std::size_t>(rank)] = e;
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");

  // Submission order fixes the tag order: op i runs in tag i + 1.
  const std::vector<int> tags = rr.trace->tags();
  EXPECT_TRUE(std::find(tags.begin(), tags.end(), 1) != tags.end());
  EXPECT_TRUE(std::find(tags.begin(), tags.end(), 3) != tags.end());

  const testutil::CollRun solo0 = testutil::run_index(
      n, k, b0,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::alltoall(comm, send, recv, b0);
      },
      s0);
  const testutil::CollRun solo1 = testutil::run_concat(
      n, k, b1,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::allgather(comm, send, recv, b1);
      },
      s1);
  const testutil::CollRun solo2 = testutil::run_index(
      n, k, b2,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::alltoall(comm, send, recv, b2);
      },
      s2);
  ASSERT_EQ(solo0.error, "");
  ASSERT_EQ(solo1.error, "");
  ASSERT_EQ(solo2.error, "");
  const std::array<const testutil::CollRun*, 3> solos = {&solo0, &solo1,
                                                         &solo2};
  for (int i = 0; i < 3; ++i) {
    sched::Schedule concurrent = rr.trace->to_schedule_for_tag(i + 1);
    sched::Schedule solo = solos[static_cast<std::size_t>(i)]
                               ->trace->to_schedule();
    concurrent.normalize();
    solo.normalize();
    EXPECT_TRUE(concurrent == solo)
        << "tag " << (i + 1) << " trace diverges from its solo run";
  }
}

TEST(ProgressEngine, ConcurrentRandomizedSweep) {
  // 2-8 outstanding operations of mixed families and distinct geometries
  // per trial; every payload must match the blocking twin bitwise.
  SplitMix64 rng(0xA11C0DE);
  for (int trial = 0; trial < 12; ++trial) {
    const std::int64_t n = 3 + static_cast<std::int64_t>(rng.next_below(6));
    const int k = 1 + static_cast<int>(rng.next_below(3));
    const int ops = 2 + static_cast<int>(rng.next_below(7));
    const std::uint64_t seed = rng.next();
    SCOPED_TRACE("trial=" + std::to_string(trial) + " n=" + std::to_string(n) +
                 " k=" + std::to_string(k) + " ops=" + std::to_string(ops));
    std::vector<std::string> errors(static_cast<std::size_t>(n));
    std::vector<ProgressStats> stats(static_cast<std::size_t>(n));
    mps::run_spmd(n, k, [&](mps::Communicator& comm) {
      const std::int64_t rank = comm.rank();
      SplitMix64 local(seed);  // same stream on every rank: SPMD decisions
      struct OpBufs {
        int family;  // 0 = alltoall, 1 = allgather, 2 = reduce_scatter
        std::int64_t b = 0;
        std::int64_t elems = 0;
        std::uint64_t seed = 0;
        std::vector<std::byte> send;
        std::vector<std::byte> recv;
      };
      std::vector<OpBufs> bufs(static_cast<std::size_t>(ops));
      std::vector<Request> reqs;
      reqs.reserve(static_cast<std::size_t>(ops));
      for (int i = 0; i < ops; ++i) {
        OpBufs& ob = bufs[static_cast<std::size_t>(i)];
        ob.family = static_cast<int>(local.next_below(3));
        ob.seed = local.next();
        // Distinct block size per op index: no two ops share a fuse
        // signature, so nothing batches and every op gets its own tag.
        ob.b = 8 * (i + 1) + static_cast<std::int64_t>(local.next_below(8));
        switch (ob.family) {
          case 0:
            ob.send.resize(static_cast<std::size_t>(n * ob.b));
            ob.recv.assign(ob.send.size(), std::byte{0xEE});
            coll::fill_index_send(ob.send, n, rank, ob.b, ob.seed);
            reqs.push_back(coll::ialltoall(comm, ob.send, ob.recv, ob.b));
            break;
          case 1:
            ob.send.resize(static_cast<std::size_t>(ob.b));
            ob.recv.assign(static_cast<std::size_t>(n * ob.b),
                           std::byte{0xEE});
            coll::fill_concat_send(ob.send, rank, ob.b, ob.seed);
            reqs.push_back(coll::iallgather(comm, ob.send, ob.recv, ob.b));
            break;
          default:
            ob.elems = ob.b;  // elems, not bytes: keep shapes modest
            ob.b = ob.elems * static_cast<std::int64_t>(sizeof(double));
            ob.send = fill_reduce_send(
                n, rank, ob.elems, static_cast<std::int64_t>(ob.seed % 1024));
            ob.recv.assign(static_cast<std::size_t>(ob.b), std::byte{0xEE});
            reqs.push_back(
                coll::ireduce_scatter(comm, ob.send, ob.recv, ob.b,
                                      ReduceOp::sum(ReduceElem::kF64)));
            break;
        }
      }
      if (ProgressEngine::for_comm(comm).outstanding() !=
          static_cast<std::size_t>(ops)) {
        errors[static_cast<std::size_t>(rank)] = "outstanding() != ops";
        // fall through: the requests still have to be completed
      }
      // Complete in reverse submission order: every wait but the last
      // collects an operation the engine finished while driving others.
      for (int i = ops - 1; i >= 0; --i) {
        (void)reqs[static_cast<std::size_t>(i)].wait();
      }
      std::string& err = errors[static_cast<std::size_t>(rank)];
      for (int i = 0; i < ops && err.empty(); ++i) {
        const OpBufs& ob = bufs[static_cast<std::size_t>(i)];
        switch (ob.family) {
          case 0:
            err = coll::check_index_recv(ob.recv, n, rank, ob.b, ob.seed);
            break;
          case 1:
            err = coll::check_concat_recv(ob.recv, n, ob.b, ob.seed);
            break;
          default: {
            const std::vector<double> want = expected_reduce_block(
                n, rank, ob.elems, static_cast<std::int64_t>(ob.seed % 1024));
            if (std::memcmp(ob.recv.data(), want.data(), ob.recv.size()) !=
                0) {
              err = "reduce_scatter mismatch at op " + std::to_string(i);
            }
            break;
          }
        }
      }
      stats[static_cast<std::size_t>(rank)] =
          ProgressEngine::for_comm(comm).stats();
    });
    for (const std::string& e : errors) ASSERT_EQ(e, "");
    for (const ProgressStats& st : stats) {
      EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(ops));
      EXPECT_EQ(st.completed, static_cast<std::uint64_t>(ops));
      EXPECT_EQ(st.fused_groups, 0u);  // distinct shapes: nothing batches
      EXPECT_EQ(st.tags_used, static_cast<std::uint64_t>(ops));
      EXPECT_EQ(st.serial_fallback, 0u);
    }
  }
}

TEST(ProgressEngine, WaitAnyCollectsEveryRequestExactlyOnce) {
  const std::int64_t n = 8;
  const std::int64_t bs[] = {16, 32, 48, 64};
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  mps::run_spmd(n, 2, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::array<std::vector<std::byte>, 4> send;
    std::array<std::vector<std::byte>, 4> recv;
    std::vector<Request> reqs;
    for (int i = 0; i < 4; ++i) {
      send[static_cast<std::size_t>(i)].resize(
          static_cast<std::size_t>(n * bs[i]));
      recv[static_cast<std::size_t>(i)].assign(
          send[static_cast<std::size_t>(i)].size(), std::byte{0xEE});
      coll::fill_index_send(send[static_cast<std::size_t>(i)], n, rank, bs[i],
                            200 + static_cast<std::uint64_t>(i));
      reqs.push_back(coll::ialltoall(comm, send[static_cast<std::size_t>(i)],
                                     recv[static_cast<std::size_t>(i)],
                                     bs[i]));
    }
    std::set<std::size_t> seen;
    for (int i = 0; i < 4; ++i) {
      const std::size_t idx = coll::wait_any(reqs);
      if (!seen.insert(idx).second) {
        errors[static_cast<std::size_t>(rank)] = "wait_any repeated an index";
        return;
      }
    }
    std::string& err = errors[static_cast<std::size_t>(rank)];
    if (seen.size() != 4) err = "wait_any missed a request";
    for (int i = 0; i < 4 && err.empty(); ++i) {
      err = coll::check_index_recv(recv[static_cast<std::size_t>(i)], n, rank,
                                   bs[i], 200 + static_cast<std::uint64_t>(i));
    }
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");
}

TEST(ProgressEngine, DroppedRequestCompletesBeforeBuffersDie) {
  const std::int64_t n = 6;
  const std::int64_t b = 32;
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  mps::run_spmd(n, 2, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> send(static_cast<std::size_t>(n * b));
    std::vector<std::byte> recv(send.size(), std::byte{0xEE});
    coll::fill_index_send(send, n, rank, b, 31);
    {
      Request req = coll::ialltoall(comm, send, recv, b);
      // Dropped without wait(): the destructor must complete the operation
      // while send/recv are still alive.
    }
    if (ProgressEngine::for_comm(comm).outstanding() != 0) {
      errors[static_cast<std::size_t>(rank)] = "dropped request leaked";
      return;
    }
    errors[static_cast<std::size_t>(rank)] =
        coll::check_index_recv(recv, n, rank, b, 31);
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");
}

// ---------------------------------------------------------------------------
// Serial FIFO fallback: wrappers that only override exchange() have no tag
// namespaces; the engine must degrade, not deadlock.

class PassthroughComm final : public mps::Communicator {
 public:
  explicit PassthroughComm(Communicator& inner) : inner_(&inner) {}
  [[nodiscard]] std::int64_t rank() const override { return inner_->rank(); }
  [[nodiscard]] std::int64_t size() const override { return inner_->size(); }
  [[nodiscard]] int ports() const override { return inner_->ports(); }
  void barrier() override { inner_->barrier(); }
  void record_plan_event(const mps::PlanEvent& e) override {
    inner_->record_plan_event(e);
  }
  void exchange(int round, std::span<const mps::SendSpec> sends,
                std::span<const mps::RecvSpec> recvs) override {
    inner_->exchange(round, sends, recvs);
  }

 private:
  Communicator* inner_;
};

TEST(ProgressEngine, SerialFallbackOnExchangeOnlyWrappers) {
  const std::int64_t n = 6;
  const std::int64_t b = 16;
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  std::vector<ProgressStats> stats(static_cast<std::size_t>(n));
  mps::run_spmd(n, 2, [&](mps::Communicator& comm) {
    PassthroughComm wrapped(comm);
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> send0(static_cast<std::size_t>(n * b));
    std::vector<std::byte> recv0(send0.size(), std::byte{0xEE});
    std::vector<std::byte> send1(static_cast<std::size_t>(b));
    std::vector<std::byte> recv1(static_cast<std::size_t>(n * b),
                                 std::byte{0xEE});
    coll::fill_index_send(send0, n, rank, b, 41);
    coll::fill_concat_send(send1, rank, b, 42);
    Request r0 = coll::ialltoall(wrapped, send0, recv0, b);
    Request r1 = coll::iallgather(wrapped, send1, recv1, b);
    // On the fallback, test() degrades to wait() and must return true.
    const bool done1 = r1.test();  // out of order: runs r0 first internally
    (void)r1.wait();
    (void)r0.wait();
    std::string e = done1 ? "" : "fallback test() returned false";
    if (e.empty()) e = coll::check_index_recv(recv0, n, rank, b, 41);
    if (e.empty()) e = coll::check_concat_recv(recv1, n, b, 42);
    errors[static_cast<std::size_t>(rank)] = e;
    stats[static_cast<std::size_t>(rank)] =
        ProgressEngine::for_comm(wrapped).stats();
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");
  for (const ProgressStats& st : stats) {
    EXPECT_EQ(st.submitted, 2u);
    EXPECT_EQ(st.completed, 2u);
    EXPECT_EQ(st.serial_fallback, 2u);
    EXPECT_EQ(st.tags_used, 0u);  // tag 0 only: no namespaces allocated
    EXPECT_EQ(st.fused_groups, 0u);
  }
}

// ---------------------------------------------------------------------------
// Batching: same-shape operations submitted together fuse into one wire
// exchange when the model says the saved start-ups beat the pack cost.
// At k = 1 and small blocks the (G-1)·C1·β saving dwarfs the copies.

TEST(ProgressEngine, SameShapeAlltoallsFuseAtKOne) {
  const std::int64_t n = 8;
  const int k = 1;
  const std::int64_t b = 1024;  // fused block G·b = 4 KiB, under the cap
  const int G = 4;
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  std::vector<ProgressStats> stats(static_cast<std::size_t>(n));
  mps::run_spmd(n, k, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(G));
    std::vector<std::vector<std::byte>> recv(static_cast<std::size_t>(G));
    std::vector<Request> reqs;
    for (int g = 0; g < G; ++g) {
      send[static_cast<std::size_t>(g)].resize(
          static_cast<std::size_t>(n * b));
      recv[static_cast<std::size_t>(g)].assign(
          send[static_cast<std::size_t>(g)].size(), std::byte{0xEE});
      coll::fill_index_send(send[static_cast<std::size_t>(g)], n, rank, b,
                            500 + static_cast<std::uint64_t>(g));
      reqs.push_back(coll::ialltoall(comm, send[static_cast<std::size_t>(g)],
                                     recv[static_cast<std::size_t>(g)], b));
    }
    coll::wait_all(reqs);
    std::string& err = errors[static_cast<std::size_t>(rank)];
    for (int g = 0; g < G && err.empty(); ++g) {
      err = coll::check_index_recv(recv[static_cast<std::size_t>(g)], n, rank,
                                   b, 500 + static_cast<std::uint64_t>(g));
    }
    stats[static_cast<std::size_t>(rank)] =
        ProgressEngine::for_comm(comm).stats();
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");
  for (const ProgressStats& st : stats) {
    EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(G));
    EXPECT_EQ(st.completed, static_cast<std::uint64_t>(G));
    EXPECT_EQ(st.fused_groups, 1u);
    EXPECT_EQ(st.fused_members, static_cast<std::uint64_t>(G));
    EXPECT_EQ(st.tags_used, 1u);  // one wire exchange, one tag
  }
}

// The fused-block cap: a same-shape group whose fused wire block G·b would
// exceed BRUCK_FUSE_MAX_BLOCK (default 4 KiB) runs per-op instead — past a
// few KiB the substrate's large-message costs outgrow the start-up savings.
TEST(ProgressEngine, OversizedGroupFallsBackToPerOp) {
  const std::int64_t n = 8;
  const int k = 1;
  const std::int64_t b = 4096;  // fused block would be 16 KiB > 4 KiB cap
  const int G = 4;
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  std::vector<ProgressStats> stats(static_cast<std::size_t>(n));
  mps::run_spmd(n, k, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(G));
    std::vector<std::vector<std::byte>> recv(static_cast<std::size_t>(G));
    std::vector<Request> reqs;
    for (int g = 0; g < G; ++g) {
      send[static_cast<std::size_t>(g)].resize(
          static_cast<std::size_t>(n * b));
      recv[static_cast<std::size_t>(g)].assign(
          send[static_cast<std::size_t>(g)].size(), std::byte{0xEE});
      coll::fill_index_send(send[static_cast<std::size_t>(g)], n, rank, b,
                            800 + static_cast<std::uint64_t>(g));
      reqs.push_back(coll::ialltoall(comm, send[static_cast<std::size_t>(g)],
                                     recv[static_cast<std::size_t>(g)], b));
    }
    coll::wait_all(reqs);
    std::string& err = errors[static_cast<std::size_t>(rank)];
    for (int g = 0; g < G && err.empty(); ++g) {
      err = coll::check_index_recv(recv[static_cast<std::size_t>(g)], n, rank,
                                   b, 800 + static_cast<std::uint64_t>(g));
    }
    stats[static_cast<std::size_t>(rank)] =
        ProgressEngine::for_comm(comm).stats();
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");
  for (const ProgressStats& st : stats) {
    EXPECT_EQ(st.fused_groups, 0u);
    EXPECT_EQ(st.fused_members, 0u);
    EXPECT_EQ(st.tags_used, static_cast<std::uint64_t>(G));
  }
}

TEST(ProgressEngine, SameShapeReduceScattersFuseAtKOne) {
  const std::int64_t n = 8;
  const int k = 1;
  const std::int64_t elems = 256;  // fused block G·b = 4 KiB, at the cap
  const std::int64_t b = elems * static_cast<std::int64_t>(sizeof(double));
  const int G = 2;
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  std::vector<ProgressStats> stats(static_cast<std::size_t>(n));
  mps::run_spmd(n, k, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(G));
    std::vector<std::vector<std::byte>> recv(static_cast<std::size_t>(G));
    std::vector<Request> reqs;
    for (int g = 0; g < G; ++g) {
      send[static_cast<std::size_t>(g)] =
          fill_reduce_send(n, rank, elems, 7000 + g);
      recv[static_cast<std::size_t>(g)].assign(static_cast<std::size_t>(b),
                                               std::byte{0xEE});
      reqs.push_back(coll::ireduce_scatter(
          comm, send[static_cast<std::size_t>(g)],
          recv[static_cast<std::size_t>(g)], b,
          ReduceOp::sum(ReduceElem::kF64)));
    }
    coll::wait_all(reqs);
    std::string& err = errors[static_cast<std::size_t>(rank)];
    for (int g = 0; g < G && err.empty(); ++g) {
      const std::vector<double> want =
          expected_reduce_block(n, rank, elems, 7000 + g);
      if (std::memcmp(recv[static_cast<std::size_t>(g)].data(), want.data(),
                      recv[static_cast<std::size_t>(g)].size()) != 0) {
        err = "fused reduce_scatter mismatch at member " + std::to_string(g);
      }
    }
    stats[static_cast<std::size_t>(rank)] =
        ProgressEngine::for_comm(comm).stats();
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");
  for (const ProgressStats& st : stats) {
    EXPECT_EQ(st.fused_groups, 1u);
    EXPECT_EQ(st.fused_members, static_cast<std::uint64_t>(G));
  }
}

}  // namespace
}  // namespace bruck
