// Strided-datatype (coll::Layout) sweeps: every layout overload of the
// facade is bitwise-compared against the user-side staging oracle — pack
// the strided buffer with layout_gather, run the plain contiguous
// collective, unpack with layout_scatter.  The zero-copy extent walk must
// deliver the identical receive buffer, *including* untouched gap bytes
// (the sentinel check), on every execution path.  The digest tests pin the
// PlanCache policy: contiguous layouts key identically to plain calls, and
// stride jitter within one contiguity class shares one cached plan.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "coll/api.hpp"
#include "coll/layout.hpp"
#include "coll/plan_cache.hpp"
#include "mps/runtime.hpp"
#include "util/rng.hpp"

namespace bruck::coll {
namespace {

constexpr std::byte kGap{0xEE};

std::vector<std::byte> random_buffer(std::int64_t bytes, std::uint64_t seed) {
  std::vector<std::byte> out(static_cast<std::size_t>(bytes));
  fill_random_bytes(out, seed);
  return out;
}

/// Gather the `block`-th logical block of `src` (laid out by `layout`).
std::vector<std::byte> gather_block(std::span<const std::byte> src,
                                    const Layout& layout, std::int64_t block) {
  std::vector<std::byte> out(static_cast<std::size_t>(layout.block_bytes()));
  layout_gather(src, layout, block * layout.block_stride(), 0,
                layout.block_bytes(), out);
  return out;
}

/// One random vector layout; `cls` selects the degenerate corners the sweep
/// must cover: 0 = fully contiguous, 1 = single-element pieces with gaps,
/// else a general strided vector.
Layout random_vector_layout(SplitMix64& rng, int cls) {
  if (cls == 0) {
    const std::int64_t count = 1 + static_cast<std::int64_t>(rng.next_below(4));
    const std::int64_t blocklen =
        1 + static_cast<std::int64_t>(rng.next_below(12));
    return Layout::vector(count, blocklen, blocklen);  // dense == contiguous
  }
  if (cls == 1) {
    // Single-byte pieces: the worst-case extent map (every logical byte is
    // its own physical run).
    const std::int64_t count = 1 + static_cast<std::int64_t>(rng.next_below(6));
    const std::int64_t stride = 2 + static_cast<std::int64_t>(rng.next_below(5));
    return Layout::vector(count, 1, stride);
  }
  const std::int64_t count = 1 + static_cast<std::int64_t>(rng.next_below(4));
  const std::int64_t blocklen =
      1 + static_cast<std::int64_t>(rng.next_below(12));
  const std::int64_t stride =
      blocklen + static_cast<std::int64_t>(rng.next_below(13));
  return Layout::vector(count, blocklen, stride);
}

struct SweepResult {
  std::string error;
};

std::string compare(std::span<const std::byte> got,
                    std::span<const std::byte> want) {
  if (got.size() != want.size()) return "size mismatch";
  if (std::memcmp(got.data(), want.data(), got.size()) != 0) {
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i] != want[i]) {
        return "first mismatch at byte " + std::to_string(i);
      }
    }
  }
  return "";
}

TEST(LayoutDatatype, AlltoallRandomStridedSweep) {
  SplitMix64 rng(0x1A7007);
  const ExecutionPath paths[] = {ExecutionPath::kReference,
                                 ExecutionPath::kCompiled,
                                 ExecutionPath::kPipelined};
  for (int trial = 0; trial < 14; ++trial) {
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.next_below(8));
    const int k = 1 + static_cast<int>(rng.next_below(3));
    // Force every contiguity class through the sweep (mixed
    // strided/contiguous pairs included); the recv side reshapes the same
    // logical byte count.
    const Layout sl = random_vector_layout(rng, trial % 4);
    const std::int64_t b = sl.block_bytes();
    const Layout rl = (b % 2 == 0 && trial % 2 == 0)
                          ? Layout::vector(2, b / 2, b / 2 + 3)
                          : Layout::vector(1, b, b).with_block_stride(b + 5);
    const std::uint64_t seed = rng.next();
    for (int pi = 0; pi < 3; ++pi) {
      AlltoallOptions options;
      options.path = paths[pi];
      options.segments = static_cast<int>(rng.next_below(3));
      SCOPED_TRACE("trial=" + std::to_string(trial) + " n=" + std::to_string(n) +
                   " k=" + std::to_string(k) + " path=" + std::to_string(pi) +
                   " sl=" + sl.describe() + " rl=" + rl.describe());
      std::vector<std::string> errors(static_cast<std::size_t>(n));
      mps::run_spmd(n, k, [&](mps::Communicator& comm) {
        const std::int64_t rank = comm.rank();
        std::vector<std::byte> send =
            random_buffer(sl.span_bytes(n), seed ^ static_cast<std::uint64_t>(rank));
        std::vector<std::byte> recv(
            static_cast<std::size_t>(rl.span_bytes(n)), kGap);
        alltoall(comm, send, recv, sl, rl, options);

        // Local oracle: every rank regenerates every peer's buffer and
        // stages the exchange by hand.  recv block j = peer j's block
        // `rank`, scattered through the recv layout; gap bytes stay kGap.
        std::vector<std::byte> expected(recv.size(), kGap);
        for (std::int64_t j = 0; j < n; ++j) {
          const std::vector<std::byte> peer = random_buffer(
              sl.span_bytes(n), seed ^ static_cast<std::uint64_t>(j));
          const std::vector<std::byte> block = gather_block(peer, sl, rank);
          layout_scatter(expected, rl, j * rl.block_stride(), 0, b, block);
        }
        errors[static_cast<std::size_t>(rank)] = compare(recv, expected);
      });
      for (const std::string& e : errors) ASSERT_EQ(e, "");
    }
  }
}

TEST(LayoutDatatype, AllgatherRandomStridedSweep) {
  SplitMix64 rng(0xA11);
  const ExecutionPath paths[] = {ExecutionPath::kReference,
                                 ExecutionPath::kCompiled,
                                 ExecutionPath::kPipelined};
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.next_below(9));
    const int k = 1 + static_cast<int>(rng.next_below(3));
    const Layout sl = random_vector_layout(rng, trial % 3 == 0 ? 0 : 2);
    const std::int64_t b = sl.block_bytes();
    const Layout rl = Layout::vector(1, b, b).with_block_stride(b + 7);
    const std::uint64_t seed = rng.next();
    AllgatherOptions options;
    options.path = paths[trial % 3];
    SCOPED_TRACE("trial=" + std::to_string(trial) + " n=" + std::to_string(n) +
                 " sl=" + sl.describe());
    std::vector<std::string> errors(static_cast<std::size_t>(n));
    mps::run_spmd(n, k, [&](mps::Communicator& comm) {
      const std::int64_t rank = comm.rank();
      // Send is one block; recv holds n blocks through the recv layout.
      std::vector<std::byte> send = random_buffer(
          sl.span_bytes(1), seed ^ static_cast<std::uint64_t>(rank));
      std::vector<std::byte> recv(static_cast<std::size_t>(rl.span_bytes(n)),
                                  kGap);
      allgather(comm, send, recv, sl, rl, options);

      std::vector<std::byte> expected(recv.size(), kGap);
      for (std::int64_t j = 0; j < n; ++j) {
        const std::vector<std::byte> peer = random_buffer(
            sl.span_bytes(1), seed ^ static_cast<std::uint64_t>(j));
        const std::vector<std::byte> block = gather_block(peer, sl, 0);
        layout_scatter(expected, rl, j * rl.block_stride(), 0, b, block);
      }
      errors[static_cast<std::size_t>(rank)] = compare(recv, expected);
    });
    for (const std::string& e : errors) ASSERT_EQ(e, "");
  }
}

/// Element-aligned strided layout for the reduction overloads (piece
/// boundaries must fall on f64 edges).
Layout random_f64_layout(SplitMix64& rng) {
  const std::int64_t count = 1 + static_cast<std::int64_t>(rng.next_below(3));
  const std::int64_t blocklen =
      8 * (1 + static_cast<std::int64_t>(rng.next_below(3)));
  const std::int64_t stride =
      blocklen + 8 * static_cast<std::int64_t>(rng.next_below(3));
  return Layout::vector(count, blocklen, stride);
}

/// Fill as exact-integer doubles so every combine association order gives a
/// bitwise-identical sum.
std::vector<std::byte> random_f64_buffer(std::int64_t bytes,
                                         std::uint64_t seed) {
  std::vector<std::byte> out(static_cast<std::size_t>(bytes));
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i + 8 <= out.size(); i += 8) {
    const double v = static_cast<double>(rng.next_below(1000));
    std::memcpy(out.data() + i, &v, 8);
  }
  return out;
}

void accumulate_f64(std::span<std::byte> acc, std::span<const std::byte> in) {
  for (std::size_t i = 0; i + 8 <= acc.size(); i += 8) {
    double a = 0, b = 0;
    std::memcpy(&a, acc.data() + i, 8);
    std::memcpy(&b, in.data() + i, 8);
    a += b;
    std::memcpy(acc.data() + i, &a, 8);
  }
}

TEST(LayoutDatatype, ReduceScatterStridedMatchesStagedOracle) {
  SplitMix64 rng(0x5EDU);
  const ExecutionPath paths[] = {ExecutionPath::kReference,
                                 ExecutionPath::kCompiled,
                                 ExecutionPath::kPipelined};
  for (int trial = 0; trial < 9; ++trial) {
    const std::int64_t n = 2 + static_cast<std::int64_t>(rng.next_below(7));
    const int k = 1 + static_cast<int>(rng.next_below(2));
    const Layout sl = random_f64_layout(rng);
    const std::int64_t b = sl.block_bytes();
    const Layout rl = Layout::vector(b / 8, 8, 16);
    const std::uint64_t seed = rng.next();
    ReduceScatterOptions options;
    options.path = paths[trial % 3];
    SCOPED_TRACE("trial=" + std::to_string(trial) + " n=" + std::to_string(n) +
                 " sl=" + sl.describe());
    const ReduceOp op = ReduceOp::sum(ReduceElem::kF64);
    std::vector<std::string> errors(static_cast<std::size_t>(n));
    mps::run_spmd(n, k, [&](mps::Communicator& comm) {
      const std::int64_t rank = comm.rank();
      std::vector<std::byte> send = random_f64_buffer(
          sl.span_bytes(n), seed ^ static_cast<std::uint64_t>(rank));
      std::vector<std::byte> recv(static_cast<std::size_t>(rl.span_bytes(1)),
                                  kGap);
      reduce_scatter(comm, send, recv, sl, rl, op, options);

      // recv block = Σ over ranks of their contribution to this rank.
      std::vector<std::byte> acc(static_cast<std::size_t>(b), std::byte{0});
      for (std::int64_t j = 0; j < n; ++j) {
        const std::vector<std::byte> peer = random_f64_buffer(
            sl.span_bytes(n), seed ^ static_cast<std::uint64_t>(j));
        accumulate_f64(acc, gather_block(peer, sl, rank));
      }
      std::vector<std::byte> expected(recv.size(), kGap);
      layout_scatter(expected, rl, 0, 0, b, acc);
      errors[static_cast<std::size_t>(rank)] = compare(recv, expected);
    });
    for (const std::string& e : errors) ASSERT_EQ(e, "");
  }
}

TEST(LayoutDatatype, AllreduceStridedMatchesStagedOracle) {
  SplitMix64 rng(0xA11D);
  const ExecutionPath paths[] = {ExecutionPath::kReference,
                                 ExecutionPath::kCompiled,
                                 ExecutionPath::kPipelined};
  for (int trial = 0; trial < 6; ++trial) {
    const std::int64_t n = 2 + static_cast<std::int64_t>(rng.next_below(6));
    const Layout sl = random_f64_layout(rng);
    const std::int64_t bytes = sl.block_bytes();
    const Layout rl = Layout::vector(bytes / 8, 8, 24);
    const std::uint64_t seed = rng.next();
    AllreduceOptions options;
    options.path = paths[trial % 3];
    SCOPED_TRACE("trial=" + std::to_string(trial) + " n=" + std::to_string(n) +
                 " sl=" + sl.describe());
    const ReduceOp op = ReduceOp::sum(ReduceElem::kF64);
    std::vector<std::string> errors(static_cast<std::size_t>(n));
    mps::run_spmd(n, 1, [&](mps::Communicator& comm) {
      const std::int64_t rank = comm.rank();
      // The whole allreduce payload is one layout block on each side.
      std::vector<std::byte> send = random_f64_buffer(
          sl.span_bytes(1), seed ^ static_cast<std::uint64_t>(rank));
      std::vector<std::byte> recv(static_cast<std::size_t>(rl.span_bytes(1)),
                                  kGap);
      allreduce(comm, send, recv, sl, rl, op, options);

      std::vector<std::byte> acc(static_cast<std::size_t>(bytes),
                                 std::byte{0});
      for (std::int64_t j = 0; j < n; ++j) {
        const std::vector<std::byte> peer = random_f64_buffer(
            sl.span_bytes(1), seed ^ static_cast<std::uint64_t>(j));
        accumulate_f64(acc, gather_block(peer, sl, 0));
      }
      std::vector<std::byte> expected(recv.size(), kGap);
      layout_scatter(expected, rl, 0, 0, bytes, acc);
      errors[static_cast<std::size_t>(rank)] = compare(recv, expected);
    });
    for (const std::string& e : errors) ASSERT_EQ(e, "");
  }
}

TEST(LayoutDatatype, AlltoallvStridedCanonicalDispls) {
  SplitMix64 rng(0xA2A5);
  const ExecutionPath paths[] = {ExecutionPath::kReference,
                                 ExecutionPath::kCompiled,
                                 ExecutionPath::kPipelined};
  for (int trial = 0; trial < 6; ++trial) {
    const std::int64_t n = 2 + static_cast<std::int64_t>(rng.next_below(6));
    const int k = 1 + static_cast<int>(rng.next_below(2));
    const Layout sl = Layout::vector(
        2 + static_cast<std::int64_t>(rng.next_below(3)),
        2 + static_cast<std::int64_t>(rng.next_below(6)),
        9 + static_cast<std::int64_t>(rng.next_below(6)));
    const Layout rl = Layout::vector(sl.block_bytes(), 1, 2);
    const std::int64_t b = sl.block_bytes();
    // Random pair counts in [0, b], some empty.
    std::vector<std::int64_t> counts(static_cast<std::size_t>(n * n));
    for (auto& c : counts) {
      c = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(b) + 1));
      if (rng.next_below(4) == 0) c = 0;
    }
    const std::uint64_t seed = rng.next();
    AlltoallvOptions options;
    options.path = paths[trial % 3];
    SCOPED_TRACE("trial=" + std::to_string(trial) + " n=" + std::to_string(n));
    std::vector<std::string> errors(static_cast<std::size_t>(n));
    mps::run_spmd(n, k, [&](mps::Communicator& comm) {
      const std::int64_t rank = comm.rank();
      std::vector<std::byte> send = random_buffer(
          sl.span_bytes(n), seed ^ static_cast<std::uint64_t>(rank));
      std::vector<std::byte> recv(static_cast<std::size_t>(rl.span_bytes(n)),
                                  kGap);
      // Empty displacements: the packed canonical layout in layout space
      // (consecutive pairs span_of() apart).
      alltoallv(comm, send, recv, counts, {}, {}, sl, rl, options);

      std::vector<std::byte> expected(recv.size(), kGap);
      std::int64_t rd = 0;
      for (std::int64_t j = 0; j < n; ++j) {
        const std::int64_t c = counts[static_cast<std::size_t>(j * n + rank)];
        // Peer j's send displacement for its pair (j → rank).
        std::int64_t sd = 0;
        for (std::int64_t m = 0; m < rank; ++m) {
          sd += sl.span_of(counts[static_cast<std::size_t>(j * n + m)]);
        }
        const std::vector<std::byte> peer = random_buffer(
            sl.span_bytes(n), seed ^ static_cast<std::uint64_t>(j));
        std::vector<std::byte> pair(static_cast<std::size_t>(c));
        layout_gather(peer, sl, sd, 0, c, pair);
        layout_scatter(expected, rl, rd, 0, c, pair);
        rd += rl.span_of(c);
      }
      errors[static_cast<std::size_t>(rank)] = compare(recv, expected);
    });
    for (const std::string& e : errors) ASSERT_EQ(e, "");
  }
}

TEST(LayoutDatatype, TiledAndInterleavedBlockStride) {
  // The two exotic corners in one: a 2-D tiled send layout, and a
  // transpose-style send layout whose blocks interleave (block_stride <
  // block_span), each against a contiguous receive side.
  const std::int64_t n = 6;
  const Layout tiled = Layout::tiled(/*tiles=*/2, /*tile_stride=*/20,
                                     /*count=*/2, /*blocklen=*/4,
                                     /*stride=*/8);
  // Column-of-a-matrix: 3 rows of 8 bytes, row pitch n*8, consecutive
  // columns 8 bytes apart.
  const Layout column =
      Layout::vector(3, 8, n * 8).with_block_stride(8);
  for (const Layout& sl : {tiled, column}) {
    const std::int64_t b = sl.block_bytes();
    const Layout rl = Layout::contiguous(b);
    for (const ExecutionPath path :
         {ExecutionPath::kReference, ExecutionPath::kCompiled,
          ExecutionPath::kPipelined}) {
      AlltoallOptions options;
      options.path = path;
      SCOPED_TRACE(sl.describe() + " path=" +
                   std::to_string(static_cast<int>(path)));
      std::vector<std::string> errors(static_cast<std::size_t>(n));
      mps::run_spmd(n, 2, [&](mps::Communicator& comm) {
        const std::int64_t rank = comm.rank();
        std::vector<std::byte> send = random_buffer(
            sl.span_bytes(n), 99 ^ static_cast<std::uint64_t>(rank));
        std::vector<std::byte> recv(static_cast<std::size_t>(n * b), kGap);
        alltoall(comm, send, recv, sl, rl, options);

        std::vector<std::byte> expected(recv.size(), kGap);
        for (std::int64_t j = 0; j < n; ++j) {
          const std::vector<std::byte> peer = random_buffer(
              sl.span_bytes(n), 99 ^ static_cast<std::uint64_t>(j));
          const std::vector<std::byte> block = gather_block(peer, sl, rank);
          std::memcpy(expected.data() + j * b, block.data(),
                      static_cast<std::size_t>(b));
        }
        errors[static_cast<std::size_t>(rank)] = compare(recv, expected);
      });
      for (const std::string& e : errors) ASSERT_EQ(e, "");
    }
  }
}

TEST(LayoutDigest, ContiguousLayoutsKeyIdenticallyToPlainCalls) {
  PlanCache::global().clear();
  const std::int64_t n = 6;
  const std::int64_t b = 24;
  AlltoallOptions options;
  options.path = ExecutionPath::kCompiled;
  const auto run_plain = [&] {
    mps::run_spmd(n, 1, [&](mps::Communicator& comm) {
      std::vector<std::byte> send(static_cast<std::size_t>(n * b));
      std::vector<std::byte> recv(send.size());
      fill_random_bytes(send, 7);
      alltoall(comm, send, recv, b, options);
    });
  };
  run_plain();
  const PlanCacheStats plain = PlanCache::global().stats();
  EXPECT_EQ(plain.misses, 1u);

  // Explicitly-contiguous layouts (both spellings) must hit the same entry:
  // no cache blow-up from layout adoption.
  for (const Layout& lay :
       {Layout::contiguous(b), Layout::vector(3, 8, 8)}) {
    mps::run_spmd(n, 1, [&](mps::Communicator& comm) {
      std::vector<std::byte> send(static_cast<std::size_t>(n * b));
      std::vector<std::byte> recv(send.size());
      fill_random_bytes(send, 8);
      alltoall(comm, send, recv, lay, lay, options);
    });
  }
  const PlanCacheStats after = PlanCache::global().stats();
  EXPECT_EQ(after.entries, plain.entries);
  EXPECT_EQ(after.misses, plain.misses);
  EXPECT_GT(after.hits, plain.hits);
}

TEST(LayoutDigest, StrideJitterSharesOnePlanAcrossCalls) {
  PlanCache::global().clear();
  const std::int64_t n = 6;
  AlltoallOptions options;
  options.path = ExecutionPath::kCompiled;
  const auto run_with = [&](const Layout& sl) {
    const std::int64_t b = sl.block_bytes();
    const Layout rl = Layout::vector(1, b, b).with_block_stride(b + 3);
    mps::run_spmd(n, 1, [&](mps::Communicator& comm) {
      std::vector<std::byte> send(
          static_cast<std::size_t>(sl.span_bytes(n)));
      std::vector<std::byte> recv(
          static_cast<std::size_t>(rl.span_bytes(n)));
      fill_random_bytes(send, 11);
      alltoall(comm, send, recv, sl, rl, options);
    });
  };
  run_with(Layout::vector(4, 8, 24));
  const PlanCacheStats first = PlanCache::global().stats();
  EXPECT_EQ(first.misses, 1u);
  EXPECT_EQ(first.entries, 1u);

  // Stride jitter within the contiguity class (same count/blocklen log2
  // buckets, different physical strides) must hit the cached plan.
  run_with(Layout::vector(4, 8, 32));
  run_with(Layout::vector(4, 8, 40));
  const PlanCacheStats jittered = PlanCache::global().stats();
  EXPECT_EQ(jittered.entries, 1u);
  EXPECT_EQ(jittered.misses, 1u);

  // A different contiguity class (different count bucket) is a new key.
  run_with(Layout::vector(32, 8, 24));
  const PlanCacheStats other = PlanCache::global().stats();
  EXPECT_EQ(other.entries, 2u);
  EXPECT_EQ(other.misses, 2u);
}

}  // namespace
}  // namespace bruck::coll
