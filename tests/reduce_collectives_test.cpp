// Reduction collectives (reduce_scatter / allreduce) through the plan
// engine: the ReduceOp table itself, randomized cross-checks of every
// algorithm × execution path against independently computed expectations,
// degenerate shapes, trace C1/C2 equality between executors, and the
// bytes_reduced accounting.
//
// Exactness discipline: the plan paths combine contributions in
// tree/arrival order while the expectations combine in rank order, so all
// generated data is chosen order-exact — small integers for sums (float
// sums stay within the mantissa), signed powers of two for products — and
// results are compared bitwise.
#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "coll/api.hpp"
#include "coll/plan.hpp"
#include "coll/plan_cache.hpp"
#include "coll/reduction.hpp"
#include "gtest/gtest.h"
#include "mps/runtime.hpp"
#include "util/rng.hpp"

namespace bruck {
namespace {

using coll::AllreduceOptions;
using coll::ExecutionPath;
using coll::ReduceAlgorithm;
using coll::ReduceElem;
using coll::ReduceKind;
using coll::ReduceOp;
using coll::ReduceScatterOptions;

constexpr ReduceKind kKinds[] = {ReduceKind::kSum, ReduceKind::kMin,
                                 ReduceKind::kMax, ReduceKind::kProd};
constexpr ReduceElem kElems[] = {ReduceElem::kI32, ReduceElem::kI64,
                                 ReduceElem::kF32, ReduceElem::kF64};

ReduceOp make_op(ReduceKind kind, ReduceElem elem) {
  switch (kind) {
    case ReduceKind::kSum: return ReduceOp::sum(elem);
    case ReduceKind::kMin: return ReduceOp::min(elem);
    case ReduceKind::kMax: return ReduceOp::max(elem);
    case ReduceKind::kProd: return ReduceOp::prod(elem);
    case ReduceKind::kUser: break;
  }
  return ReduceOp::sum(elem);
}

/// Deterministic, order-exact test value for (kind, src rank, element id).
/// Sums use small integers, min/max wide integers, prod signed powers of
/// two with at most 10 non-unit magnitudes per element across ranks.
template <typename T>
T gen_value(ReduceKind kind, std::int64_t src, std::int64_t idx) {
  SplitMix64 rng(0xC0FFEEull * 2654435761ull +
                 static_cast<std::uint64_t>(src) * 0x9E3779B97F4A7C15ull +
                 static_cast<std::uint64_t>(idx));
  const std::uint64_t h = rng.next();
  switch (kind) {
    case ReduceKind::kSum:
      return static_cast<T>(static_cast<std::int64_t>(h % 1001) - 500);
    case ReduceKind::kMin:
    case ReduceKind::kMax:
      return static_cast<T>(static_cast<std::int64_t>(h % 100000) - 50000);
    case ReduceKind::kProd: {
      const T sign = (h & 4) != 0 ? T(1) : T(-1);
      const T mag = (src < 10 && (h & 8) != 0) ? T(2) : T(1);
      return sign * mag;
    }
    case ReduceKind::kUser:
      break;
  }
  return T(0);
}

template <typename T>
T apply(ReduceKind kind, T a, T b) {
  switch (kind) {
    case ReduceKind::kSum: return a + b;
    case ReduceKind::kMin: return a < b ? a : b;
    case ReduceKind::kMax: return a > b ? a : b;
    case ReduceKind::kProd: return a * b;
    case ReduceKind::kUser: break;
  }
  return a;
}

/// Fill rank `src`'s send buffer: block d, element e holds
/// gen_value(kind, src, d * block_elems + e).
template <typename T>
std::vector<std::byte> fill_send(ReduceKind kind, std::int64_t n,
                                 std::int64_t src, std::int64_t block_elems) {
  std::vector<std::byte> out(
      static_cast<std::size_t>(n * block_elems) * sizeof(T));
  for (std::int64_t d = 0; d < n; ++d) {
    for (std::int64_t e = 0; e < block_elems; ++e) {
      const T v = gen_value<T>(kind, src, d * block_elems + e);
      std::memcpy(out.data() + (d * block_elems + e) * sizeof(T), &v,
                  sizeof(T));
    }
  }
  return out;
}

/// The rank-order reduction every test compares against, computed without
/// ReduceOp::combine (independent derivation).
template <typename T>
std::vector<std::byte> expected_block(ReduceKind kind, std::int64_t n,
                                      std::int64_t dst,
                                      std::int64_t block_elems) {
  std::vector<std::byte> out(static_cast<std::size_t>(block_elems) *
                             sizeof(T));
  for (std::int64_t e = 0; e < block_elems; ++e) {
    T acc = gen_value<T>(kind, 0, dst * block_elems + e);
    for (std::int64_t src = 1; src < n; ++src) {
      acc = apply(kind, acc,
                  gen_value<T>(kind, src, dst * block_elems + e));
    }
    std::memcpy(out.data() + e * sizeof(T), &acc, sizeof(T));
  }
  return out;
}

/// Run reduce_scatter on every rank and bitwise-compare each rank's result
/// against expected_block.  Returns the trace for metric assertions.
template <typename T>
std::shared_ptr<mps::Trace> check_reduce_scatter(
    ReduceKind kind, ReduceElem elem, std::int64_t n, int k,
    std::int64_t block_elems, const ReduceScatterOptions& options,
    const std::string& label) {
  const ReduceOp op = make_op(kind, elem);
  const std::int64_t b = block_elems * static_cast<std::int64_t>(sizeof(T));
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  mps::RunResult rr = mps::run_spmd(n, k, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    const std::vector<std::byte> send =
        fill_send<T>(kind, n, rank, block_elems);
    std::vector<std::byte> recv(static_cast<std::size_t>(b), std::byte{0xEE});
    coll::reduce_scatter(comm, send, recv, b, op, options);
    const std::vector<std::byte> want =
        expected_block<T>(kind, n, rank, block_elems);
    // Not memcmp: data() is null for the zero-byte block sweep.
    if (recv != want) {
      errors[static_cast<std::size_t>(rank)] = "payload mismatch";
    }
  });
  for (std::int64_t r = 0; r < n; ++r) {
    EXPECT_EQ(errors[static_cast<std::size_t>(r)], "")
        << label << " rank " << r;
  }
  return rr.trace;
}

/// Run allreduce on every rank over `elems` elements and bitwise-compare
/// against the rank-order expectation.
template <typename T>
void check_allreduce(ReduceKind kind, ReduceElem elem, std::int64_t n, int k,
                     std::int64_t elems, const AllreduceOptions& options,
                     const std::string& label) {
  const ReduceOp op = make_op(kind, elem);
  const std::int64_t bytes = elems * static_cast<std::int64_t>(sizeof(T));
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  mps::RunResult rr = mps::run_spmd(n, k, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> send(static_cast<std::size_t>(bytes));
    for (std::int64_t e = 0; e < elems; ++e) {
      const T v = gen_value<T>(kind, rank, e);
      std::memcpy(send.data() + e * sizeof(T), &v, sizeof(T));
    }
    std::vector<std::byte> recv(static_cast<std::size_t>(bytes),
                                std::byte{0xEE});
    coll::allreduce(comm, send, recv, op, options);
    for (std::int64_t e = 0; e < elems; ++e) {
      T acc = gen_value<T>(kind, 0, e);
      for (std::int64_t src = 1; src < n; ++src) {
        acc = apply(kind, acc, gen_value<T>(kind, src, e));
      }
      T got;
      std::memcpy(&got, recv.data() + e * sizeof(T), sizeof(T));
      if (std::memcmp(&got, &acc, sizeof(T)) != 0) {
        errors[static_cast<std::size_t>(rank)] = "payload mismatch";
        break;
      }
    }
  });
  (void)rr;
  for (std::int64_t r = 0; r < n; ++r) {
    EXPECT_EQ(errors[static_cast<std::size_t>(r)], "")
        << label << " rank " << r;
  }
}

template <typename Fn>
void dispatch_elem(ReduceElem elem, Fn fn) {
  switch (elem) {
    case ReduceElem::kI32: fn.template operator()<std::int32_t>(); break;
    case ReduceElem::kI64: fn.template operator()<std::int64_t>(); break;
    case ReduceElem::kF32: fn.template operator()<float>(); break;
    case ReduceElem::kF64: fn.template operator()<double>(); break;
  }
}

std::string case_label(ReduceKind kind, ReduceElem elem, std::int64_t n,
                       int k, std::int64_t be, const std::string& algo,
                       const std::string& path) {
  return coll::to_string(kind) + "/" + coll::to_string(elem) + " n=" +
         std::to_string(n) + " k=" + std::to_string(k) + " be=" +
         std::to_string(be) + " " + algo + " " + path;
}

// ---------------------------------------------------------------------------
// The operator table itself, against hand-computed values.

TEST(ReduceOp, BuiltinTableMatchesManualCombine) {
  for (const ReduceKind kind : kKinds) {
    for (const ReduceElem elem : kElems) {
      dispatch_elem(elem, [&]<typename T>() {
        const ReduceOp op = make_op(kind, elem);
        ASSERT_EQ(op.elem_bytes(), static_cast<std::int64_t>(sizeof(T)));
        constexpr std::int64_t kCount = 17;
        std::vector<std::byte> acc(kCount * sizeof(T));
        std::vector<std::byte> in(kCount * sizeof(T));
        std::vector<T> want(kCount);
        for (std::int64_t i = 0; i < kCount; ++i) {
          const T a = gen_value<T>(kind, 0, i);
          const T v = gen_value<T>(kind, 1, i);
          std::memcpy(acc.data() + i * sizeof(T), &a, sizeof(T));
          std::memcpy(in.data() + i * sizeof(T), &v, sizeof(T));
          want[static_cast<std::size_t>(i)] = apply(kind, a, v);
        }
        op.combine(acc.data(), in.data(),
                   static_cast<std::int64_t>(acc.size()));
        EXPECT_EQ(std::memcmp(acc.data(), want.data(), acc.size()), 0)
            << op.name();
      });
    }
  }
}

TEST(ReduceOp, CacheTagSeparatesKindsAndWidths) {
  EXPECT_NE(ReduceOp::sum(ReduceElem::kI32).cache_tag(),
            ReduceOp::sum(ReduceElem::kI64).cache_tag());
  EXPECT_NE(ReduceOp::sum(ReduceElem::kI32).cache_tag(),
            ReduceOp::min(ReduceElem::kI32).cache_tag());
  // Same width, different type: the lowered plan is identical either way,
  // so sharing a tag is fine — the tag separates kind and width.
  EXPECT_EQ(ReduceOp::sum(ReduceElem::kI32).cache_tag(),
            ReduceOp::sum(ReduceElem::kF32).cache_tag());
}

// ---------------------------------------------------------------------------
// Every op × element type on one geometry, all three execution paths.

TEST(ReduceScatter, AllOpsAllTypesAllPaths) {
  const std::int64_t n = 8;
  const int k = 2;
  const std::int64_t be = 3;
  for (const ReduceKind kind : kKinds) {
    for (const ReduceElem elem : kElems) {
      for (const ExecutionPath path :
           {ExecutionPath::kReference, ExecutionPath::kCompiled,
            ExecutionPath::kPipelined}) {
        ReduceScatterOptions options;
        options.path = path;
        dispatch_elem(elem, [&]<typename T>() {
          check_reduce_scatter<T>(
              kind, elem, n, k, be, options,
              case_label(kind, elem, n, k, be, "auto",
                         coll::to_string(path)));
        });
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized geometry/algorithm sweep (n ≤ 32).

TEST(ReduceScatter, RandomizedSweepAllAlgorithms) {
  SplitMix64 rng(0xBADC0DE5);
  const std::int64_t ns[] = {1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32};
  for (int trial = 0; trial < 60; ++trial) {
    const std::int64_t n =
        ns[rng.next_below(sizeof(ns) / sizeof(ns[0]))];
    const int k = 1 + static_cast<int>(rng.next_below(4));
    const std::int64_t be = static_cast<std::int64_t>(rng.next_below(6));
    const ReduceKind kind = kKinds[rng.next_below(4)];
    const ReduceElem elem = kElems[rng.next_below(4)];
    const ExecutionPath path =
        std::array{ExecutionPath::kReference, ExecutionPath::kCompiled,
                   ExecutionPath::kPipelined}[rng.next_below(3)];

    ReduceScatterOptions options;
    options.path = path;
    std::string algo = "auto";
    switch (rng.next_below(4)) {
      case 0:
        options.algorithm = ReduceAlgorithm::kDirect;
        algo = "direct";
        break;
      case 1:
        options.algorithm = ReduceAlgorithm::kBruck;
        options.radix = 2 + static_cast<std::int64_t>(
                                rng.next_below(static_cast<std::uint64_t>(
                                    std::max<std::int64_t>(1, n - 1))));
        algo = "bruck r=" + std::to_string(options.radix);
        break;
      case 2:
        if ((n & (n - 1)) == 0) {
          options.algorithm = ReduceAlgorithm::kPairwise;
          algo = "pairwise";
        }
        break;
      default:
        break;  // kAuto
    }
    // Exercise forced and tuned segmentation.
    options.segments = static_cast<int>(rng.next_below(3));

    dispatch_elem(elem, [&]<typename T>() {
      check_reduce_scatter<T>(kind, elem, n, k, be, options,
                              case_label(kind, elem, n, k, be, algo,
                                         coll::to_string(path)));
    });
  }
}

// ---------------------------------------------------------------------------
// Degenerate shapes: n = 1 and zero-byte blocks.

TEST(ReduceScatter, DegenerateShapes) {
  for (const ExecutionPath path :
       {ExecutionPath::kReference, ExecutionPath::kCompiled,
        ExecutionPath::kPipelined}) {
    ReduceScatterOptions options;
    options.path = path;
    // n = 1: the result is this rank's own contribution.
    check_reduce_scatter<std::int64_t>(ReduceKind::kSum, ReduceElem::kI64, 1,
                                       2, 4, options, "n=1");
    // Zero-byte blocks: pure round counting, nothing on the fabric.
    check_reduce_scatter<float>(ReduceKind::kProd, ReduceElem::kF32, 6, 2, 0,
                                options, "b=0");
    // Forced algorithms on the degenerate shapes too.
    options.algorithm = ReduceAlgorithm::kBruck;
    options.radix = 2;
    check_reduce_scatter<std::int32_t>(ReduceKind::kMax, ReduceElem::kI32, 1,
                                       1, 2, options, "n=1 bruck");
    check_reduce_scatter<double>(ReduceKind::kMin, ReduceElem::kF64, 5, 3, 0,
                                 options, "b=0 bruck");
  }
}

// ---------------------------------------------------------------------------
// Allreduce: reduce-scatter + allgather, including lengths not divisible
// by n (padded tail) and the degenerate shapes.

TEST(Allreduce, RandomizedSweep) {
  SplitMix64 rng(0xA11D0CE5);
  const std::int64_t ns[] = {1, 2, 3, 5, 8, 13, 16, 32};
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t n =
        ns[rng.next_below(sizeof(ns) / sizeof(ns[0]))];
    const int k = 1 + static_cast<int>(rng.next_below(3));
    const std::int64_t elems = static_cast<std::int64_t>(rng.next_below(50));
    const ReduceKind kind = kKinds[rng.next_below(4)];
    const ReduceElem elem = kElems[rng.next_below(4)];
    const ExecutionPath path =
        std::array{ExecutionPath::kReference, ExecutionPath::kCompiled,
                   ExecutionPath::kPipelined}[rng.next_below(3)];
    AllreduceOptions options;
    options.path = path;
    if (rng.next_below(2) == 0) {
      options.concat = coll::ConcatAlgorithm::kRing;
    }
    dispatch_elem(elem, [&]<typename T>() {
      check_allreduce<T>(kind, elem, n, k, elems, options,
                         case_label(kind, elem, n, k, elems, "allreduce",
                                    coll::to_string(path)));
    });
  }
}

// ---------------------------------------------------------------------------
// The user-function escape hatch end-to-end (XOR over u64 — commutative
// and associative, so every combining order is exact).

TEST(ReduceScatter, UserFunctionEscapeHatch) {
  const std::int64_t n = 9;
  const int k = 2;
  const std::int64_t be = 4;
  const std::int64_t b = be * 8;
  const ReduceOp op = ReduceOp::user(
      [](std::byte* acc, const std::byte* in, std::int64_t count, void*) {
        for (std::int64_t i = 0; i < count; ++i) {
          std::uint64_t a;
          std::uint64_t v;
          std::memcpy(&a, acc + i * 8, 8);
          std::memcpy(&v, in + i * 8, 8);
          a ^= v;
          std::memcpy(acc + i * 8, &a, 8);
        }
      },
      /*elem_bytes=*/8);
  for (const ExecutionPath path :
       {ExecutionPath::kReference, ExecutionPath::kCompiled,
        ExecutionPath::kPipelined}) {
    std::vector<std::string> errors(static_cast<std::size_t>(n));
    mps::run_spmd(n, k, [&](mps::Communicator& comm) {
      const std::int64_t rank = comm.rank();
      std::vector<std::byte> send(static_cast<std::size_t>(n * b));
      fill_random_bytes(send, 77 + static_cast<std::uint64_t>(rank));
      std::vector<std::byte> recv(static_cast<std::size_t>(b));
      ReduceScatterOptions options;
      options.path = path;
      coll::reduce_scatter(comm, send, recv, b, op, options);
      // Expected: XOR of every rank's block for `rank`.
      std::vector<std::byte> want(static_cast<std::size_t>(b), std::byte{0});
      for (std::int64_t src = 0; src < n; ++src) {
        std::vector<std::byte> other(static_cast<std::size_t>(n * b));
        fill_random_bytes(other, 77 + static_cast<std::uint64_t>(src));
        for (std::int64_t i = 0; i < b; ++i) {
          want[static_cast<std::size_t>(i)] ^=
              other[static_cast<std::size_t>(rank * b + i)];
        }
      }
      if (std::memcmp(recv.data(), want.data(), recv.size()) != 0) {
        errors[static_cast<std::size_t>(rank)] = "payload mismatch";
      }
    });
    for (std::int64_t r = 0; r < n; ++r) {
      EXPECT_EQ(errors[static_cast<std::size_t>(r)], "")
          << "user op, path " << coll::to_string(path) << ", rank " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Executor equivalence: the compiled and pipelined walks of one plan must
// produce identical C1/C2 traces, and the direct plan must match the
// per-pair reference transfer-for-transfer.

std::shared_ptr<mps::Trace> traced_reduce(std::int64_t n, int k,
                                          std::int64_t be,
                                          const ReduceScatterOptions& options) {
  return check_reduce_scatter<std::int64_t>(ReduceKind::kSum,
                                            ReduceElem::kI64, n, k, be,
                                            options, "traced");
}

TEST(ReduceScatter, TraceMetricsAgreeAcrossExecutors) {
  const std::int64_t n = 12;
  const int k = 2;
  const std::int64_t be = 5;
  for (const ReduceAlgorithm algorithm :
       {ReduceAlgorithm::kBruck, ReduceAlgorithm::kDirect}) {
    ReduceScatterOptions options;
    options.algorithm = algorithm;
    options.radix = algorithm == ReduceAlgorithm::kBruck ? 3 : 0;
    options.path = ExecutionPath::kCompiled;
    const model::CostMetrics compiled =
        traced_reduce(n, k, be, options)->metrics();
    options.path = ExecutionPath::kPipelined;
    const model::CostMetrics pipelined =
        traced_reduce(n, k, be, options)->metrics();
    EXPECT_EQ(compiled.c1, pipelined.c1);
    EXPECT_EQ(compiled.c2, pipelined.c2);
    EXPECT_EQ(compiled.total_bytes, pipelined.total_bytes);
  }
  // Direct plan vs the per-pair reference: identical round structure.
  ReduceScatterOptions direct;
  direct.algorithm = ReduceAlgorithm::kDirect;
  direct.path = ExecutionPath::kCompiled;
  const model::CostMetrics plan_m = traced_reduce(n, k, be, direct)->metrics();
  direct.path = ExecutionPath::kReference;
  const model::CostMetrics ref_m = traced_reduce(n, k, be, direct)->metrics();
  EXPECT_EQ(plan_m.c1, ref_m.c1);
  EXPECT_EQ(plan_m.c2, ref_m.c2);
}

TEST(ReduceScatter, TraceMatchesClosedFormCosts) {
  const std::int64_t n = 16;
  const int k = 3;
  const std::int64_t be = 2;
  const std::int64_t b = be * 8;
  ReduceScatterOptions options;
  options.algorithm = ReduceAlgorithm::kBruck;
  options.radix = 2;
  options.path = ExecutionPath::kPipelined;
  const model::CostMetrics got = traced_reduce(n, k, be, options)->metrics();
  const model::CostMetrics want = model::reduce_bruck_cost(n, 2, k, b);
  EXPECT_EQ(got.c1, want.c1);
  EXPECT_EQ(got.c2, want.c2);
  EXPECT_EQ(got.total_bytes, want.total_bytes);
  // The reduce skeleton moves exactly n−1 blocks per rank.
  EXPECT_EQ(want.max_rank_sent, (n - 1) * b);
}

TEST(ReduceScatter, BytesReducedAccounting) {
  const std::int64_t n = 10;
  const int k = 2;
  const std::int64_t be = 4;
  const std::int64_t b = be * 8;
  for (const ReduceAlgorithm algorithm :
       {ReduceAlgorithm::kBruck, ReduceAlgorithm::kDirect}) {
    for (const ExecutionPath path :
         {ExecutionPath::kCompiled, ExecutionPath::kPipelined}) {
      ReduceScatterOptions options;
      options.algorithm = algorithm;
      options.radix = 2;
      options.path = path;
      const auto trace = traced_reduce(n, k, be, options);
      const mps::PlanStats stats = trace->plan_stats();
      EXPECT_EQ(stats.uses, static_cast<std::uint64_t>(n));
      // Every rank combines exactly the n−1 foreign contributions.
      EXPECT_EQ(stats.bytes_reduced, n * (n - 1) * b)
          << coll::to_string(algorithm) << "/" << coll::to_string(path);
      EXPECT_EQ(stats.bytes_sent, n * (n - 1) * b);
    }
  }
}

// ---------------------------------------------------------------------------
// Plan anatomy: reduce plans describe themselves as reductions and their
// receive messages carry the combine marker.

TEST(ReduceScatter, DescribeShowsCombine) {
  const auto plan = coll::Plan::lower_reduce_bruck(8, 2, 2);
  const std::string text = plan->describe();
  EXPECT_NE(text.find("reduce/bruck"), std::string::npos) << text;
  EXPECT_NE(text.find("(combine)"), std::string::npos) << text;
  const auto direct = coll::Plan::lower_reduce_direct(8, 2);
  EXPECT_NE(direct->describe().find("reduce/direct"), std::string::npos);
}

}  // namespace
}  // namespace bruck
