// The pipelined plan executor over the nonblocking port engine.
//
// The correctness story extends plan_cache_test's three-way cross-check to
// the fourth execution mode: for random (n, k, radix, b, segments)
// configurations, the pipelined executor must deliver exactly the payloads
// the reference (inline) implementation does AND record the identical
// C1/C2 trace — wire segmentation and out-of-order receive completion must
// be invisible above the transport.  Also covered here: idle-round
// tree-based baselines, the deferred engine fallback for wrapper
// communicators that only override exchange(), groups, segment tuning, and
// the drop_from_barrier exception-unwind path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <vector>

#include "coll/api.hpp"
#include "coll/plan.hpp"
#include "coll/plan_cache.hpp"
#include "coll/verify.hpp"
#include "model/tuner.hpp"
#include "mps/group.hpp"
#include "mps/runtime.hpp"
#include "test_util.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bruck {
namespace {

using namespace std::chrono_literals;

using coll::AllgatherOptions;
using coll::AlltoallOptions;
using coll::ConcatAlgorithm;
using coll::ExecutionPath;
using coll::IndexAlgorithm;

// ---------------------------------------------------------------------------
// Random sweeps: pipelined vs reference, payloads and traces.

TEST(PipelinedExecutor, IndexRandomSweepMatchesReference) {
  SplitMix64 rng(0xF1FE11E5);
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.next_below(24));
    const int k = 1 + static_cast<int>(rng.next_below(4));
    const std::int64_t b = static_cast<std::int64_t>(rng.next_below(24));
    const std::int64_t r =
        2 + static_cast<std::int64_t>(rng.next_below(
                static_cast<std::uint64_t>(std::max<std::int64_t>(1, n - 1))));
    const int segments = 1 + static_cast<int>(rng.next_below(4));
    SCOPED_TRACE("n=" + std::to_string(n) + " r=" + std::to_string(r) +
                 " k=" + std::to_string(k) + " b=" + std::to_string(b) +
                 " S=" + std::to_string(segments));
    const std::uint64_t seed = rng.next();

    AlltoallOptions pipelined;
    pipelined.algorithm = IndexAlgorithm::kBruck;
    pipelined.radix = r;
    pipelined.path = ExecutionPath::kPipelined;
    pipelined.segments = segments;
    AlltoallOptions reference = pipelined;
    reference.path = ExecutionPath::kReference;

    const testutil::CollRun run_p = testutil::run_index(
        n, k, b,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return coll::alltoall(comm, send, recv, b, pipelined);
        },
        seed);
    const testutil::CollRun run_r = testutil::run_index(
        n, k, b,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return coll::alltoall(comm, send, recv, b, reference);
        },
        seed);
    ASSERT_EQ(run_p.error, "");
    ASSERT_EQ(run_r.error, "");
    EXPECT_EQ(run_p.rounds_used, run_r.rounds_used);
    sched::Schedule exec_p = run_p.trace->to_schedule();
    sched::Schedule exec_r = run_r.trace->to_schedule();
    exec_p.normalize();
    exec_r.normalize();
    EXPECT_TRUE(exec_p == exec_r)
        << "pipelined and reference traces diverge";
  }
}

TEST(PipelinedExecutor, ConcatRandomSweepMatchesReference) {
  SplitMix64 rng(0x5E67ED);
  const ConcatAlgorithm algorithms[] = {ConcatAlgorithm::kBruck,
                                        ConcatAlgorithm::kFolklore,
                                        ConcatAlgorithm::kRing};
  const model::ConcatLastRound strategies[] = {
      model::ConcatLastRound::kAuto, model::ConcatLastRound::kColumnGranular,
      model::ConcatLastRound::kTwoRound};
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.next_below(24));
    const int k = 1 + static_cast<int>(rng.next_below(4));
    const std::int64_t b = static_cast<std::int64_t>(rng.next_below(16));
    // kFolklore/kRing cover the idle-round tree/chain baselines: most ranks
    // sit out most rounds, and the pipelined executor must still count
    // rounds exactly as the reference does.
    const ConcatAlgorithm alg = algorithms[rng.next_below(3)];
    const model::ConcatLastRound strategy = strategies[rng.next_below(3)];
    const int segments = 1 + static_cast<int>(rng.next_below(4));
    SCOPED_TRACE("n=" + std::to_string(n) + " k=" + std::to_string(k) +
                 " b=" + std::to_string(b) + " alg=" + coll::to_string(alg) +
                 " strat=" + std::to_string(static_cast<int>(strategy)) +
                 " S=" + std::to_string(segments));
    const std::uint64_t seed = rng.next();

    AllgatherOptions pipelined;
    pipelined.algorithm = alg;
    pipelined.last_round = strategy;
    pipelined.path = ExecutionPath::kPipelined;
    pipelined.segments = segments;
    AllgatherOptions reference = pipelined;
    reference.path = ExecutionPath::kReference;

    const testutil::CollRun run_p = testutil::run_concat(
        n, k, b,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return coll::allgather(comm, send, recv, b, pipelined);
        },
        seed);
    const testutil::CollRun run_r = testutil::run_concat(
        n, k, b,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return coll::allgather(comm, send, recv, b, reference);
        },
        seed);
    ASSERT_EQ(run_p.error, "");
    ASSERT_EQ(run_r.error, "");
    EXPECT_EQ(run_p.rounds_used, run_r.rounds_used);
    sched::Schedule exec_p = run_p.trace->to_schedule();
    sched::Schedule exec_r = run_r.trace->to_schedule();
    exec_p.normalize();
    exec_r.normalize();
    EXPECT_TRUE(exec_p == exec_r)
        << "pipelined and reference traces diverge";
  }
}

TEST(PipelinedExecutor, PipelinedVsBlockingCompiledIdenticalTraces) {
  // The two compiled executors walk the same plan; their traces (and plan
  // stats) must be indistinguishable.
  const std::int64_t n = 12;
  const int k = 2;
  const std::int64_t b = 32;
  const auto run_with = [&](ExecutionPath path) {
    AlltoallOptions options;
    options.algorithm = IndexAlgorithm::kBruck;
    options.radix = 3;
    options.path = path;
    options.segments = path == ExecutionPath::kPipelined ? 2 : 0;
    return testutil::run_index(
        n, k, b,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return coll::alltoall(comm, send, recv, b, options);
        });
  };
  const testutil::CollRun blocking = run_with(ExecutionPath::kCompiled);
  const testutil::CollRun pipelined = run_with(ExecutionPath::kPipelined);
  ASSERT_EQ(blocking.error, "");
  ASSERT_EQ(pipelined.error, "");
  sched::Schedule sb = blocking.trace->to_schedule();
  sched::Schedule sp = pipelined.trace->to_schedule();
  sb.normalize();
  sp.normalize();
  EXPECT_TRUE(sb == sp);
  EXPECT_EQ(blocking.trace->plan_stats().bytes_sent,
            pipelined.trace->plan_stats().bytes_sent);
  EXPECT_EQ(blocking.trace->plan_stats().rounds,
            pipelined.trace->plan_stats().rounds);
}

TEST(PipelinedExecutor, LargeBlocksActuallySegmentOnTheWire) {
  // Small-b sweeps collapse to one wire segment under the executor's
  // model::kMinSegmentBytes floor; this configuration's messages (≥ 2
  // blocks of 16 KiB under radix 2) genuinely split, exercising segmented
  // landing, reassembly, and the one-logical-trace-event accounting.
  const std::int64_t n = 4;
  const int k = 2;
  const std::int64_t b = 16384;
  AlltoallOptions pipelined;
  pipelined.algorithm = IndexAlgorithm::kBruck;
  pipelined.radix = 2;
  pipelined.path = ExecutionPath::kPipelined;
  pipelined.segments = 4;
  AlltoallOptions reference = pipelined;
  reference.path = ExecutionPath::kReference;
  const testutil::CollRun run_p = testutil::run_index(
      n, k, b,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::alltoall(comm, send, recv, b, pipelined);
      });
  const testutil::CollRun run_r = testutil::run_index(
      n, k, b,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::alltoall(comm, send, recv, b, reference);
      });
  ASSERT_EQ(run_p.error, "");
  ASSERT_EQ(run_r.error, "");
  sched::Schedule exec_p = run_p.trace->to_schedule();
  sched::Schedule exec_r = run_r.trace->to_schedule();
  exec_p.normalize();
  exec_r.normalize();
  EXPECT_TRUE(exec_p == exec_r);
}

// ---------------------------------------------------------------------------
// Idle-round baselines: in folklore most ranks are idle in most rounds, and
// several rounds at leaf ranks carry a send with no receive.  The pipelined
// executor must thread the declared round indices through identically.

TEST(PipelinedExecutor, FolkloreIdleRoundsKeepRoundAccounting) {
  for (const std::int64_t n : {5, 8, 13}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    AllgatherOptions options;
    options.algorithm = ConcatAlgorithm::kFolklore;
    options.path = ExecutionPath::kPipelined;
    options.segments = 2;
    const testutil::CollRun run = testutil::run_concat(
        n, 1, 8,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return coll::allgather(comm, send, recv, 8, options);
        });
    ASSERT_EQ(run.error, "");
    EXPECT_EQ(run.trace->metrics(),
              model::concat_folklore_cost(n, 8));
  }
}

// ---------------------------------------------------------------------------
// Wrapper communicators: a subclass that only overrides exchange() (the
// pre-port-engine extension point) must still work under the pipelined
// executor via the deferred fallback engine.

class PassthroughComm final : public mps::Communicator {
 public:
  explicit PassthroughComm(Communicator& inner) : inner_(&inner) {}
  [[nodiscard]] std::int64_t rank() const override { return inner_->rank(); }
  [[nodiscard]] std::int64_t size() const override { return inner_->size(); }
  [[nodiscard]] int ports() const override { return inner_->ports(); }
  void barrier() override { inner_->barrier(); }
  void record_plan_event(const mps::PlanEvent& e) override {
    inner_->record_plan_event(e);
  }
  void exchange(int round, std::span<const mps::SendSpec> sends,
                std::span<const mps::RecvSpec> recvs) override {
    ++exchanges_;
    inner_->exchange(round, sends, recvs);
  }
  [[nodiscard]] int exchanges() const { return exchanges_; }

 private:
  Communicator* inner_;
  int exchanges_ = 0;
};

TEST(PipelinedExecutor, DeferredFallbackDrivesExchangeOnlyWrappers) {
  const std::int64_t n = 9;
  const std::int64_t b = 16;
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  std::atomic<int> exchanges{0};
  mps::RunResult rr = mps::run_spmd(n, 2, [&](mps::Communicator& comm) {
    PassthroughComm wrapped(comm);
    std::vector<std::byte> send(static_cast<std::size_t>(n * b));
    std::vector<std::byte> recv(send.size(), std::byte{0xEE});
    coll::fill_index_send(send, n, comm.rank(), b, 99);
    AlltoallOptions options;
    options.algorithm = IndexAlgorithm::kBruck;
    options.radix = 2;
    options.path = ExecutionPath::kPipelined;
    options.segments = 3;  // wrapper fabric: engine falls back symmetrically
    coll::alltoall(wrapped, send, recv, b, options);
    errors[static_cast<std::size_t>(comm.rank())] =
        coll::check_index_recv(recv, n, comm.rank(), b, 99);
    exchanges.fetch_add(wrapped.exchanges());
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");
  EXPECT_GT(exchanges.load(), 0);  // the fallback really went through exchange
  EXPECT_EQ(rr.trace->to_schedule().validate(), "");
}

// ---------------------------------------------------------------------------
// Groups: the engine forwards through GroupComm with rank translation, so
// a pipelined collective inside a subset of the machine stays correct.

TEST(PipelinedExecutor, RunsInsideProcessGroups) {
  const std::int64_t n = 8;
  const std::int64_t b = 8;
  const std::vector<std::int64_t> members = {1, 3, 4, 6};
  std::vector<std::string> errors(members.size());
  mps::run_spmd(n, 2, [&](mps::Communicator& comm) {
    const std::int64_t me = comm.rank();
    if (std::find(members.begin(), members.end(), me) == members.end()) return;
    mps::GroupComm group(comm, members);
    const std::int64_t gn = group.size();
    std::vector<std::byte> send(static_cast<std::size_t>(gn * b));
    std::vector<std::byte> recv(send.size(), std::byte{0xEE});
    coll::fill_index_send(send, gn, group.rank(), b, 7);
    AlltoallOptions options;
    options.algorithm = IndexAlgorithm::kBruck;
    options.radix = 2;
    options.path = ExecutionPath::kPipelined;
    options.segments = 2;
    coll::alltoall(group, send, recv, b, options);
    errors[static_cast<std::size_t>(group.rank())] =
        coll::check_index_recv(recv, gn, group.rank(), b, 7);
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");
}

// ---------------------------------------------------------------------------
// Exception unwind: a rank that dies mid-collective must drop from the
// barrier and surface its exception; survivors hit the engine's receive
// timeout instead of hanging.

TEST(PipelinedExecutor, RankFailureUnwindsWithoutHanging) {
  const std::int64_t n = 6;
  const std::int64_t b = 8;
  mps::FabricOptions fabric;
  fabric.n = n;
  fabric.k = 2;
  fabric.recv_timeout = 300ms;
  EXPECT_THROW(
      mps::run_spmd(fabric,
                    [&](mps::Communicator& comm) {
                      if (comm.rank() == 2) {
                        throw ContractViolation("rank 2 gives up");
                      }
                      std::vector<std::byte> send(
                          static_cast<std::size_t>(n * b), std::byte{1});
                      std::vector<std::byte> recv(send.size());
                      AlltoallOptions options;
                      options.algorithm = IndexAlgorithm::kBruck;
                      options.radix = 2;
                      options.path = ExecutionPath::kPipelined;
                      coll::alltoall(comm, send, recv, b, options);
                      comm.barrier();  // unreached: the collective times out
                    }),
      ContractViolation);
}

// ---------------------------------------------------------------------------
// The segment tuner and its keying.

TEST(SegmentTuning, SmallMessagesStayUnsegmented) {
  const model::LinearModel m = model::ibm_sp1();
  EXPECT_EQ(model::pick_segment_count(m, 10, 64).segments, 1);
  EXPECT_EQ(model::pick_segment_count(m, 10, 4096).segments, 1);
}

TEST(SegmentTuning, LargeMessagesSplitAndRespectTheCap) {
  const model::LinearModel m = model::ibm_sp1();
  const model::SegmentChoice big = model::pick_segment_count(m, 4, 1 << 20);
  EXPECT_GT(big.segments, 1);
  EXPECT_LE(big.segments, 16);
  // The pick must actually be the modeled minimum over the candidate set.
  for (int s = 1; s <= 16; ++s) {
    EXPECT_LE(big.predicted_us,
              4 * model::pipelined_round_us(m, 1 << 20, s) + 1e-9);
  }
}

TEST(SegmentTuning, SegmentCountIsPartOfThePlanKey) {
  const coll::PlanKey one =
      coll::index_plan_key(IndexAlgorithm::kBruck, 8, 2, 2, 1);
  const coll::PlanKey four =
      coll::index_plan_key(IndexAlgorithm::kBruck, 8, 2, 2, 4);
  EXPECT_FALSE(one == four);
  coll::PlanCache cache;
  EXPECT_FALSE(cache.get_or_lower(one).cache_hit);
  EXPECT_FALSE(cache.get_or_lower(four).cache_hit);  // distinct entries
  EXPECT_TRUE(cache.get_or_lower(four).cache_hit);
  EXPECT_EQ(cache.get_or_lower(four).plan->segments(), 4);
}

// ---------------------------------------------------------------------------
// The BRUCK_RECV_TIMEOUT_MS environment override (sanitizer CI jobs run
// 10-20x slower; they raise the deadlock timeout without code changes).

TEST(RecvTimeoutEnv, OverridesTheFabricDefault) {
  // Restore the caller's value afterwards: the TSan CI job sets this for
  // the whole binary, and later tests must keep seeing it.
  const char* prior_raw = std::getenv("BRUCK_RECV_TIMEOUT_MS");
  const std::string prior = prior_raw ? prior_raw : "";

  ASSERT_EQ(setenv("BRUCK_RECV_TIMEOUT_MS", "123456", 1), 0);
  EXPECT_EQ(mps::default_recv_timeout(), 123456ms);
  EXPECT_EQ(mps::FabricOptions{}.recv_timeout, 123456ms);
  // Garbage and non-positive values fall back to the built-in default.
  ASSERT_EQ(setenv("BRUCK_RECV_TIMEOUT_MS", "not-a-number", 1), 0);
  EXPECT_EQ(mps::default_recv_timeout(), 30000ms);
  ASSERT_EQ(setenv("BRUCK_RECV_TIMEOUT_MS", "-5", 1), 0);
  EXPECT_EQ(mps::default_recv_timeout(), 30000ms);
  ASSERT_EQ(unsetenv("BRUCK_RECV_TIMEOUT_MS"), 0);
  EXPECT_EQ(mps::default_recv_timeout(), 30000ms);

  if (prior_raw != nullptr) {
    ASSERT_EQ(setenv("BRUCK_RECV_TIMEOUT_MS", prior.c_str(), 1), 0);
  }
}

}  // namespace
}  // namespace bruck
