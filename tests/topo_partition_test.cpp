// The Proposition 4.2 table partitioning, including an exact reproduction of
// the paper's Table 1 instance and exhaustive constraint sweeps.
#include "topo/partition.hpp"

#include <gtest/gtest.h>

#include <map>

#include "model/costs.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::topo {
namespace {

TEST(ByteSplitPartition, ReproducesPaperTable1) {
  // Table 1: n1 = 3 (p0..p2), n2 = 7 (p3..p9), b = 3 bytes, k = 3 ports;
  // α = ⌈3·7/3⌉ = 7.
  const TablePartition p = byte_split_partition(3, 7, 3, 3);
  ASSERT_EQ(p.areas.size(), 3u);
  EXPECT_EQ(p.alpha(), 7);
  EXPECT_TRUE(p.feasible());
  EXPECT_EQ(p.check_exact_cover(), "");

  // Area 1: columns 0–2 (offset 3): p3 gets 3 bytes, p4 gets 3, p5 gets 1.
  EXPECT_EQ(p.areas[0].left_col(), 0);
  EXPECT_EQ(p.areas[0].size(), 7);
  // Per-column byte counts of area 1.
  std::map<std::int64_t, std::int64_t> a1;
  for (const AreaCell& c : p.areas[0].cells) a1[c.col] += c.size();
  EXPECT_EQ(a1, (std::map<std::int64_t, std::int64_t>{{0, 3}, {1, 3}, {2, 1}}));

  // Area 2: leftmost column 2 (offset 5): p5 gets 2, p6 gets 3, p7 gets 2.
  EXPECT_EQ(p.areas[1].left_col(), 2);
  EXPECT_EQ(p.areas[1].size(), 7);
  std::map<std::int64_t, std::int64_t> a2;
  for (const AreaCell& c : p.areas[1].cells) a2[c.col] += c.size();
  EXPECT_EQ(a2, (std::map<std::int64_t, std::int64_t>{{2, 2}, {3, 3}, {4, 2}}));

  // Area 3: leftmost column 4 (offset 7): p7 gets 1, p8 gets 3, p9 gets 3.
  EXPECT_EQ(p.areas[2].left_col(), 4);
  EXPECT_EQ(p.areas[2].size(), 7);
  std::map<std::int64_t, std::int64_t> a3;
  for (const AreaCell& c : p.areas[2].cells) a3[c.col] += c.size();
  EXPECT_EQ(a3, (std::map<std::int64_t, std::int64_t>{{4, 1}, {5, 3}, {6, 3}}));

  // The offsets the paper derives: 3, 5, 7.
  EXPECT_EQ(3 + p.areas[0].left_col(), 3);
  EXPECT_EQ(3 + p.areas[1].left_col(), 5);
  EXPECT_EQ(3 + p.areas[2].left_col(), 7);

  // All spans within n1 = 3.
  for (const Area& a : p.areas) EXPECT_LE(a.span(), 3);
}

TEST(ByteSplitPartition, RenderShowsAreaNumbers) {
  const TablePartition p = byte_split_partition(3, 7, 3, 3);
  const std::string grid = p.render();
  EXPECT_NE(grid.find("p3"), std::string::npos);
  EXPECT_NE(grid.find("p9"), std::string::npos);
  EXPECT_NE(grid.find('1'), std::string::npos);
  EXPECT_NE(grid.find('3'), std::string::npos);
}

TEST(ByteSplitPartition, ConstraintsAcrossGrid) {
  // Size constraint (≤ α) holds by construction everywhere; exact cover must
  // hold everywhere; spans must hold whenever the model-level feasibility
  // check says so (the two implementations must agree).
  for (std::int64_t n1 : {1, 2, 3, 4, 5, 8, 9, 16}) {
    for (std::int64_t n2 = 0; n2 <= 5 * n1; ++n2) {
      for (std::int64_t b : {1, 2, 3, 4, 7}) {
        for (int k : {1, 2, 3, 4, 5}) {
          if (n2 > k * n1) continue;  // outside concatenation geometry
          const TablePartition p = byte_split_partition(n1, n2, b, k);
          EXPECT_EQ(p.check_exact_cover(), "")
              << "n1=" << n1 << " n2=" << n2 << " b=" << b << " k=" << k;
          for (const Area& a : p.areas) EXPECT_LE(a.size(), p.alpha());
          EXPECT_LE(static_cast<int>(p.areas.size()), k);
        }
      }
    }
  }
}

TEST(ByteSplitPartition, FeasibilityAgreesWithModelPredicate) {
  // topo::byte_split_partition(...).feasible() and
  // model::concat_byte_split_feasible(n, k, b) are independent encodings of
  // the same criterion; sweep the concatenation geometry and compare.
  for (std::int64_t n = 2; n <= 200; ++n) {
    for (int k = 1; k <= 5; ++k) {
      for (std::int64_t b : {1, 2, 3, 4, 5}) {
        const int d = ceil_log(n, k + 1);
        const std::int64_t n1 = ipow(k + 1, d - 1);
        const std::int64_t n2 = n - n1;
        if (n2 == 0) continue;
        const TablePartition p = byte_split_partition(n1, n2, b, k);
        EXPECT_EQ(p.feasible(), model::concat_byte_split_feasible(n, k, b))
            << "n=" << n << " k=" << k << " b=" << b;
      }
    }
  }
}

TEST(ByteSplitPartition, KnownInfeasibleInstance) {
  // n = 3, k = 3, b = 3 (the d = 1 corner of the paper's range): n1 = 1,
  // n2 = 2, α = 2 — the middle area must straddle two columns, span 2 > 1.
  const TablePartition p = byte_split_partition(1, 2, 3, 3);
  EXPECT_FALSE(p.feasible());
  EXPECT_EQ(p.check_exact_cover(), "") << "cover is still exact";
}

TEST(ColumnGranularPartition, AlwaysFeasibleWithinGeometry) {
  for (std::int64_t n1 : {1, 2, 3, 4, 9, 16}) {
    for (std::int64_t n2 = 0; n2 <= 5 * n1; ++n2) {
      for (std::int64_t b : {1, 3, 5}) {
        for (int k : {1, 2, 3, 5}) {
          if (n2 > k * n1) continue;
          const TablePartition p = column_granular_partition(n1, n2, b, k);
          EXPECT_EQ(p.check_exact_cover(), "");
          // Span constraint always holds; the size bound is the Remark's
          // relaxed α + (b−1), not Proposition 4.2's α.
          EXPECT_LE(p.max_span(), n1)
              << "n1=" << n1 << " n2=" << n2 << " b=" << b << " k=" << k;
          for (const Area& a : p.areas) {
            EXPECT_LE(a.size(), p.alpha() + b - 1);
            EXPECT_LE(a.span(), n1);
            // Whole columns only.
            for (const AreaCell& c : a.cells) {
              EXPECT_EQ(c.row_begin, 0);
              EXPECT_EQ(c.row_end, b);
            }
          }
        }
      }
    }
  }
}

TEST(TwoRoundRoundA, AlwaysFeasibleAcrossConcatGeometry) {
  // concat's kTwoRound ships columns [0, n2−k) by byte-split in its first
  // round; that partition must be feasible for every n2 > k in geometry.
  for (std::int64_t n = 2; n <= 300; ++n) {
    for (int k = 1; k <= 6; ++k) {
      for (std::int64_t b : {1, 2, 3, 5, 8}) {
        const int d = ceil_log(n, k + 1);
        const std::int64_t n1 = ipow(k + 1, d - 1);
        const std::int64_t n2 = n - n1;
        if (n2 <= k) continue;
        const TablePartition p = byte_split_partition(n1, n2 - k, b, k);
        EXPECT_TRUE(p.feasible())
            << "n=" << n << " k=" << k << " b=" << b << " (round A)";
      }
    }
  }
}

TEST(Partition, DegenerateInputs) {
  const TablePartition empty = byte_split_partition(4, 0, 3, 2);
  EXPECT_TRUE(empty.areas.empty());
  EXPECT_TRUE(empty.feasible());
  EXPECT_EQ(empty.check_exact_cover(), "");
  EXPECT_THROW(byte_split_partition(0, 1, 1, 1), ContractViolation);
  EXPECT_THROW(byte_split_partition(1, -1, 1, 1), ContractViolation);
  EXPECT_THROW(byte_split_partition(1, 1, 0, 1), ContractViolation);
  EXPECT_THROW(byte_split_partition(1, 1, 1, 0), ContractViolation);
}

TEST(Partition, AreaAccessorsRejectEmpty) {
  Area a;
  EXPECT_THROW((void)a.left_col(), ContractViolation);
  EXPECT_EQ(a.size(), 0);
}

}  // namespace
}  // namespace bruck::topo
