// Randomized property sweeps: beyond the hand-picked grids, draw random
// (n, r, k, b) configurations from a fixed-seed generator and run the full
// three-way cross-check plus content verification on each.  Catches
// interactions the structured grids miss (odd n with odd radix and odd
// ports, blocks that are not multiples of anything, …).
#include <gtest/gtest.h>

#include "coll/concat_bruck.hpp"
#include "coll/index_bruck.hpp"
#include "model/costs.hpp"
#include "sched/builders_concat.hpp"
#include "sched/builders_index.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace bruck {
namespace {

TEST(RandomSweep, IndexBruckConfigurations) {
  SplitMix64 rng(0xB10CC0DE);
  for (int trial = 0; trial < 60; ++trial) {
    const std::int64_t n = 2 + static_cast<std::int64_t>(rng.next_below(30));
    const std::int64_t r = 2 + static_cast<std::int64_t>(rng.next_below(
                                   static_cast<std::uint64_t>(n - 1)));
    const int k = 1 + static_cast<int>(rng.next_below(4));
    const std::int64_t b = 1 + static_cast<std::int64_t>(rng.next_below(24));
    SCOPED_TRACE("n=" + std::to_string(n) + " r=" + std::to_string(r) +
                 " k=" + std::to_string(k) + " b=" + std::to_string(b));

    const testutil::CollRun run = testutil::run_index(
        n, k, b,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return coll::index_bruck(comm, send, recv, b,
                                   coll::IndexBruckOptions{r, 0});
        },
        /*seed=*/rng.next());
    ASSERT_EQ(run.error, "");
    sched::Schedule executed = run.trace->to_schedule();
    sched::Schedule built = sched::build_index_bruck(n, r, k, b);
    built.normalize();
    ASSERT_TRUE(executed == built);
    ASSERT_EQ(executed.metrics(), model::index_bruck_cost(n, r, k, b));
  }
}

TEST(RandomSweep, ConcatBruckConfigurations) {
  SplitMix64 rng(0xCA7A106 + 1);
  const model::ConcatLastRound strategies[] = {
      model::ConcatLastRound::kAuto, model::ConcatLastRound::kColumnGranular,
      model::ConcatLastRound::kTwoRound};
  for (int trial = 0; trial < 60; ++trial) {
    const std::int64_t n = 2 + static_cast<std::int64_t>(rng.next_below(30));
    const int k = 1 + static_cast<int>(rng.next_below(5));
    const std::int64_t b = 1 + static_cast<std::int64_t>(rng.next_below(12));
    const model::ConcatLastRound strategy =
        strategies[rng.next_below(3)];
    SCOPED_TRACE("n=" + std::to_string(n) + " k=" + std::to_string(k) +
                 " b=" + std::to_string(b) + " strat=" +
                 std::to_string(static_cast<int>(strategy)));

    const testutil::CollRun run = testutil::run_concat(
        n, k, b,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return coll::concat_bruck(comm, send, recv, b,
                                    coll::ConcatBruckOptions{strategy, 0});
        },
        /*seed=*/rng.next());
    ASSERT_EQ(run.error, "");
    sched::Schedule executed = run.trace->to_schedule();
    sched::Schedule built = sched::build_concat_bruck(n, k, b, strategy);
    built.normalize();
    ASSERT_TRUE(executed == built);
    ASSERT_EQ(executed.metrics(), model::concat_bruck_cost(n, k, b, strategy));
  }
}

TEST(RandomSweep, ComposedCollectivesShareOneFabric) {
  // Random chains: an index followed by a concat followed by an index on
  // the same communicator, rounds threaded through — everything must stay
  // correct and the merged trace valid.
  SplitMix64 rng(77);
  for (int trial = 0; trial < 12; ++trial) {
    const std::int64_t n = 3 + static_cast<std::int64_t>(rng.next_below(10));
    const std::int64_t b = 1 + static_cast<std::int64_t>(rng.next_below(9));
    const std::int64_t r = 2 + static_cast<std::int64_t>(rng.next_below(
                                   static_cast<std::uint64_t>(n - 1)));
    const std::uint64_t seed = rng.next();
    std::vector<std::string> errors(static_cast<std::size_t>(n));
    mps::RunResult rr = mps::run_spmd(n, 2, [&](mps::Communicator& comm) {
      const std::int64_t rank = comm.rank();
      auto& err = errors[static_cast<std::size_t>(rank)];
      std::vector<std::byte> isend(static_cast<std::size_t>(n * b));
      std::vector<std::byte> irecv(isend.size());
      coll::fill_index_send(isend, n, rank, b, seed);
      int round = coll::index_bruck(comm, isend, irecv, b,
                                    coll::IndexBruckOptions{r, 0});
      err = coll::check_index_recv(irecv, n, rank, b, seed);
      if (!err.empty()) return;

      std::vector<std::byte> csend(static_cast<std::size_t>(b));
      std::vector<std::byte> crecv(static_cast<std::size_t>(n * b));
      coll::fill_concat_send(csend, rank, b, seed + 1);
      round = coll::concat_bruck(comm, csend, crecv, b,
                                 coll::ConcatBruckOptions{
                                     model::ConcatLastRound::kAuto, round});
      err = coll::check_concat_recv(crecv, n, b, seed + 1);
      if (!err.empty()) return;

      coll::fill_index_send(isend, n, rank, b, seed + 2);
      coll::index_bruck(comm, isend, irecv, b,
                        coll::IndexBruckOptions{2, round});
      err = coll::check_index_recv(irecv, n, rank, b, seed + 2);
    });
    for (const std::string& e : errors) {
      ASSERT_EQ(e, "") << "trial " << trial << " n=" << n;
    }
    ASSERT_EQ(rr.trace->to_schedule().validate(), "");
  }
}

}  // namespace
}  // namespace bruck
