// Process groups: collectives over ordered subsets of the fabric, including
// the Appendix A processor-id-array semantics and concurrent disjoint
// groups.
#include "mps/group.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "coll/concat_bruck.hpp"
#include "coll/index_bruck.hpp"
#include "coll/verify.hpp"
#include "mps/runtime.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bruck::mps {
namespace {

TEST(GroupComm, RankTranslation) {
  run_spmd(6, 1, [&](Communicator& comm) {
    if (comm.rank() % 2 != 0) return;  // group of the even ranks
    GroupComm group(comm, {0, 2, 4});
    BRUCK_ENSURE(group.size() == 3);
    BRUCK_ENSURE(group.rank() == comm.rank() / 2);
    BRUCK_ENSURE(group.ports() == comm.ports());
    BRUCK_ENSURE(group.member(group.rank()) == comm.rank());
    BRUCK_ENSURE(group.getrank(4) == 2);
    BRUCK_ENSURE(group.getrank(1) == -1);
  });
}

TEST(GroupComm, RejectsBadMemberships) {
  EXPECT_THROW(run_spmd(4, 1,
                        [&](Communicator& comm) {
                          GroupComm group(comm, {0, 1, 1});  // duplicate
                        }),
               ContractViolation);
  EXPECT_THROW(run_spmd(4, 1,
                        [&](Communicator& comm) {
                          GroupComm group(comm, {0, 9});  // out of range
                        }),
               ContractViolation);
  EXPECT_THROW(run_spmd(2, 1,
                        [&](Communicator& comm) {
                          if (comm.rank() == 1) {
                            GroupComm group(comm, {0});  // caller not member
                          }
                        }),
               ContractViolation);
}

TEST(GroupComm, BarrierIsUnsupported) {
  EXPECT_THROW(run_spmd(2, 1,
                        [&](Communicator& comm) {
                          GroupComm group(comm, {0, 1});
                          group.barrier();
                        }),
               ContractViolation);
}

TEST(GroupComm, IndexInsideOneGroup) {
  // 8-rank fabric; the collective runs among ranks {1, 3, 5, 7} only.
  const std::int64_t b = 5;
  std::vector<std::string> errors(8);
  run_spmd(8, 1, [&](Communicator& comm) {
    if (comm.rank() % 2 == 0) return;
    GroupComm group(comm, {1, 3, 5, 7});
    const std::int64_t gn = group.size();
    const std::int64_t grank = group.rank();
    std::vector<std::byte> send(static_cast<std::size_t>(gn * b));
    std::vector<std::byte> recv(send.size());
    coll::fill_index_send(send, gn, grank, b, 17);
    coll::index_bruck(group, send, recv, b, coll::IndexBruckOptions{2, 0});
    errors[static_cast<std::size_t>(comm.rank())] =
        coll::check_index_recv(recv, gn, grank, b, 17);
  });
  for (const std::string& e : errors) EXPECT_EQ(e, "");
}

TEST(GroupComm, DisjointGroupsRunConcurrently) {
  // Evens run an index among themselves while odds run a concatenation —
  // simultaneously, on one fabric, with the same round numbers.
  const std::int64_t b = 4;
  std::vector<std::string> errors(10);
  RunResult rr = run_spmd(10, 1, [&](Communicator& comm) {
    const std::int64_t me = comm.rank();
    if (me % 2 == 0) {
      GroupComm group(comm, {0, 2, 4, 6, 8});
      const std::int64_t gn = group.size();
      std::vector<std::byte> send(static_cast<std::size_t>(gn * b));
      std::vector<std::byte> recv(send.size());
      coll::fill_index_send(send, gn, group.rank(), b, 23);
      coll::index_bruck(group, send, recv, b, coll::IndexBruckOptions{3, 0});
      errors[static_cast<std::size_t>(me)] =
          coll::check_index_recv(recv, gn, group.rank(), b, 23);
    } else {
      GroupComm group(comm, {1, 3, 5, 7, 9});
      const std::int64_t gn = group.size();
      std::vector<std::byte> send(static_cast<std::size_t>(b));
      std::vector<std::byte> recv(static_cast<std::size_t>(gn * b));
      coll::fill_concat_send(send, group.rank(), b, 29);
      coll::concat_bruck(group, send, recv, b, {});
      errors[static_cast<std::size_t>(me)] =
          coll::check_concat_recv(recv, gn, b, 29);
    }
  });
  for (const std::string& e : errors) EXPECT_EQ(e, "");
  // The merged trace must still satisfy the k-port constraints per round.
  EXPECT_EQ(rr.trace->to_schedule().validate(), "");
}

TEST(GroupComm, PermutedMemberOrderIsHonored) {
  // The member array is an *ordered* mapping (Appendix A's A[i] = p_i):
  // with members {3, 0, 2, 1}, group rank 0 is fabric rank 3.  After the
  // concatenation, group block i must be fabric rank members[i]'s data.
  const std::int64_t b = 3;
  const std::vector<std::int64_t> members{3, 0, 2, 1};
  std::vector<std::string> errors(4);
  run_spmd(4, 1, [&](Communicator& comm) {
    GroupComm group(comm, members);
    std::vector<std::byte> send(static_cast<std::size_t>(b));
    std::vector<std::byte> recv(static_cast<std::size_t>(4 * b));
    // Seed the payload by *fabric* rank so the expected order is visible.
    coll::fill_concat_send(send, comm.rank(), b, 31);
    coll::concat_bruck(group, send, recv, b, {});
    for (std::int64_t i = 0; i < 4; ++i) {
      for (std::int64_t off = 0; off < b; ++off) {
        const std::byte expect =
            payload_byte(31, members[static_cast<std::size_t>(i)], 0,
                         static_cast<std::size_t>(off));
        if (recv[static_cast<std::size_t>(i * b + off)] != expect) {
          errors[static_cast<std::size_t>(comm.rank())] =
              "group block order does not follow the member array";
          return;
        }
      }
    }
  });
  for (const std::string& e : errors) EXPECT_EQ(e, "");
}

TEST(GroupComm, SingletonGroupDegenerates) {
  run_spmd(3, 1, [&](Communicator& comm) {
    if (comm.rank() != 1) return;
    GroupComm group(comm, {1});
    std::vector<std::byte> send(4, std::byte{7});
    std::vector<std::byte> recv(4);
    coll::index_bruck(group, send, recv, 4, coll::IndexBruckOptions{2, 0});
    BRUCK_ENSURE(recv == send);
  });
}

}  // namespace
}  // namespace bruck::mps
