// Shared helpers for the test suite: run a collective on the threaded
// substrate with deterministic payloads and collect content errors, the
// executed trace, and per-rank round usage.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "coll/verify.hpp"
#include "mps/runtime.hpp"

namespace bruck::testutil {

/// Per-rank body of an index-style collective: (comm, send, recv) → rounds
/// used (next free round index).
using IndexCall = std::function<int(mps::Communicator&,
                                    std::span<const std::byte>,
                                    std::span<std::byte>)>;

/// Per-rank body of a concat-style collective (send is one block).
using ConcatCall = std::function<int(mps::Communicator&,
                                     std::span<const std::byte>,
                                     std::span<std::byte>)>;

struct CollRun {
  std::shared_ptr<mps::Trace> trace;
  /// First payload-verification failure across ranks ("" if all good).
  std::string error;
  /// Rounds used (identical across ranks or `error` is set).
  int rounds_used = 0;
};

inline CollRun run_index(std::int64_t n, int k, std::int64_t block_bytes,
                         const IndexCall& call, std::uint64_t seed = 42) {
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  std::vector<int> rounds(static_cast<std::size_t>(n), -1);
  mps::RunResult rr = mps::run_spmd(n, k, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> send(static_cast<std::size_t>(n * block_bytes));
    std::vector<std::byte> recv(static_cast<std::size_t>(n * block_bytes),
                                std::byte{0xEE});
    coll::fill_index_send(send, n, rank, block_bytes, seed);
    rounds[static_cast<std::size_t>(rank)] = call(comm, send, recv);
    errors[static_cast<std::size_t>(rank)] =
        coll::check_index_recv(recv, n, rank, block_bytes, seed);
  });
  CollRun out;
  out.trace = rr.trace;
  out.rounds_used = rounds.empty() ? 0 : rounds[0];
  for (std::int64_t r = 0; r < n; ++r) {
    if (!errors[static_cast<std::size_t>(r)].empty() && out.error.empty()) {
      out.error = errors[static_cast<std::size_t>(r)];
    }
    if (rounds[static_cast<std::size_t>(r)] != out.rounds_used &&
        out.error.empty()) {
      out.error = "ranks disagree on rounds used";
    }
  }
  return out;
}

inline CollRun run_concat(std::int64_t n, int k, std::int64_t block_bytes,
                          const ConcatCall& call, std::uint64_t seed = 42) {
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  std::vector<int> rounds(static_cast<std::size_t>(n), -1);
  mps::RunResult rr = mps::run_spmd(n, k, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> send(static_cast<std::size_t>(block_bytes));
    std::vector<std::byte> recv(static_cast<std::size_t>(n * block_bytes),
                                std::byte{0xEE});
    coll::fill_concat_send(send, rank, block_bytes, seed);
    rounds[static_cast<std::size_t>(rank)] = call(comm, send, recv);
    errors[static_cast<std::size_t>(rank)] =
        coll::check_concat_recv(recv, n, block_bytes, seed);
  });
  CollRun out;
  out.trace = rr.trace;
  out.rounds_used = rounds.empty() ? 0 : rounds[0];
  for (std::int64_t r = 0; r < n; ++r) {
    if (!errors[static_cast<std::size_t>(r)].empty() && out.error.empty()) {
      out.error = errors[static_cast<std::size_t>(r)];
    }
    if (rounds[static_cast<std::size_t>(r)] != out.rounds_used &&
        out.error.empty()) {
      out.error = "ranks disagree on rounds used";
    }
  }
  return out;
}

}  // namespace bruck::testutil
