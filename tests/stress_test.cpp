// Heavier configurations: many ports, larger rank counts, k-port groups,
// and long collective chains — the configurations most likely to expose
// races or port-accounting slips in the substrate.
#include <gtest/gtest.h>

#include "coll/api.hpp"
#include "coll/concat_bruck.hpp"
#include "coll/index_bruck.hpp"
#include "coll/index_direct.hpp"
#include "coll/verify.hpp"
#include "mps/group.hpp"
#include "mps/runtime.hpp"
#include "sched/builders_index.hpp"
#include "test_util.hpp"

namespace bruck {
namespace {

TEST(Stress, ManyPortsIndex) {
  // k = 8 ports on 24 ranks: whole subphases collapse into single rounds.
  const testutil::CollRun run = testutil::run_index(
      24, 8, 16,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::index_bruck(comm, send, recv, 16,
                                 coll::IndexBruckOptions{9, 0});
      });
  ASSERT_EQ(run.error, "");
  sched::Schedule built = sched::build_index_bruck(24, 9, 8, 16);
  built.normalize();
  EXPECT_TRUE(run.trace->to_schedule() == built);
  EXPECT_EQ(run.rounds_used, model::index_bruck_cost(24, 9, 8, 16).c1);
}

TEST(Stress, PortsExceedPeers) {
  // k ≥ n−1: the direct exchange finishes in one round.
  const testutil::CollRun run = testutil::run_index(
      6, 8, 32,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::index_direct(comm, send, recv, 32, {});
      });
  ASSERT_EQ(run.error, "");
  EXPECT_EQ(run.trace->metrics().c1, 1);
}

TEST(Stress, FortyRanksLargeBlocks) {
  const testutil::CollRun run = testutil::run_index(
      40, 2, 512,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::index_bruck(comm, send, recv, 512,
                                 coll::IndexBruckOptions{3, 0});
      });
  ASSERT_EQ(run.error, "");
  EXPECT_EQ(run.trace->metrics(), model::index_bruck_cost(40, 3, 2, 512));
}

TEST(Stress, KPortGroupsSideBySide) {
  // Two 8-member groups on one 16-rank fabric, each running a k = 3 index
  // with different radices, simultaneously.
  const std::int64_t b = 8;
  std::vector<std::string> errors(16);
  mps::RunResult rr = mps::run_spmd(16, 3, [&](mps::Communicator& comm) {
    const std::int64_t me = comm.rank();
    std::vector<std::int64_t> members;
    for (std::int64_t r = me % 2; r < 16; r += 2) members.push_back(r);
    mps::GroupComm group(comm, members);
    const std::int64_t gn = group.size();
    const std::int64_t radix = me % 2 == 0 ? 4 : 8;
    std::vector<std::byte> send(static_cast<std::size_t>(gn * b));
    std::vector<std::byte> recv(send.size());
    coll::fill_index_send(send, gn, group.rank(), b,
                          static_cast<std::uint64_t>(100 + me % 2));
    coll::index_bruck(group, send, recv, b, coll::IndexBruckOptions{radix, 0});
    errors[static_cast<std::size_t>(me)] = coll::check_index_recv(
        recv, gn, group.rank(), b, static_cast<std::uint64_t>(100 + me % 2));
  });
  for (const std::string& e : errors) EXPECT_EQ(e, "");
  EXPECT_EQ(rr.trace->to_schedule().validate(), "");
}

TEST(Stress, LongCollectiveChain) {
  // Twenty collectives back to back on one fabric, alternating operations
  // and radices, rounds threaded throughout.
  const std::int64_t n = 10;
  const std::int64_t b = 8;
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  mps::RunResult rr = mps::run_spmd(n, 2, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    auto& err = errors[static_cast<std::size_t>(rank)];
    int round = 0;
    for (int step = 0; step < 20 && err.empty(); ++step) {
      const auto seed = static_cast<std::uint64_t>(1000 + step);
      if (step % 2 == 0) {
        std::vector<std::byte> send(static_cast<std::size_t>(n * b));
        std::vector<std::byte> recv(send.size());
        coll::fill_index_send(send, n, rank, b, seed);
        round = coll::index_bruck(
            comm, send, recv, b,
            coll::IndexBruckOptions{2 + (step % 3), round});
        err = coll::check_index_recv(recv, n, rank, b, seed);
      } else {
        std::vector<std::byte> send(static_cast<std::size_t>(b));
        std::vector<std::byte> recv(static_cast<std::size_t>(n * b));
        coll::fill_concat_send(send, rank, b, seed);
        round = coll::concat_bruck(
            comm, send, recv, b,
            coll::ConcatBruckOptions{model::ConcatLastRound::kAuto, round});
        err = coll::check_concat_recv(recv, n, b, seed);
      }
    }
  });
  for (const std::string& e : errors) EXPECT_EQ(e, "");
  EXPECT_EQ(rr.trace->to_schedule().validate(), "");
  EXPECT_GT(rr.trace->event_count(), 100u);
}

TEST(Stress, AutoApiAtModeratelyLargeScale) {
  const testutil::CollRun run = testutil::run_index(
      32, 1, 200,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::alltoall(comm, send, recv, 200);
      });
  EXPECT_EQ(run.error, "");
}

}  // namespace
}  // namespace bruck
