// The three-way cross-check for the index algorithms: executed trace ==
// independently built schedule == closed-form cost metrics, over parameter
// grids.  This is the repo's primary anti-bug device (DESIGN.md §4).
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "coll/index_bruck.hpp"
#include "coll/index_direct.hpp"
#include "coll/index_pairwise.hpp"
#include "model/costs.hpp"
#include "sched/builders_index.hpp"
#include "test_util.hpp"
#include "util/math.hpp"
#include "util/radix.hpp"

namespace bruck {
namespace {

struct Case {
  std::int64_t n;
  std::int64_t radix;  // 0 for non-bruck algorithms
  int k;
  std::int64_t b;
};

std::string case_name(const Case& c) {
  return "n" + std::to_string(c.n) + "_r" + std::to_string(c.radix) + "_k" +
         std::to_string(c.k) + "_b" + std::to_string(c.b);
}

class BruckCrossCheck : public ::testing::TestWithParam<Case> {};

TEST_P(BruckCrossCheck, TraceEqualsScheduleEqualsClosedForm) {
  const auto [n, radix, k, b] = GetParam();
  const testutil::CollRun run = testutil::run_index(
      n, k, b,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::index_bruck(comm, send, recv, b,
                                 coll::IndexBruckOptions{radix, 0});
      });
  ASSERT_EQ(run.error, "");

  sched::Schedule executed = run.trace->to_schedule();
  sched::Schedule built = sched::build_index_bruck(n, radix, k, b);
  built.normalize();
  EXPECT_TRUE(executed == built)
      << "executed and built schedules differ for " << case_name(GetParam());

  const model::CostMetrics closed = model::index_bruck_cost(n, radix, k, b);
  EXPECT_EQ(built.metrics(), closed);
  EXPECT_EQ(executed.metrics(), closed);

  // The algorithm's reported round usage equals C1.
  EXPECT_EQ(run.rounds_used, closed.c1);
}

std::vector<Case> bruck_grid() {
  std::vector<Case> cases;
  std::set<std::tuple<std::int64_t, std::int64_t, int>> seen;
  for (std::int64_t n : {2, 3, 5, 7, 8, 9, 13, 16, 17, 27, 32}) {
    for (std::int64_t radix : {std::int64_t{2}, std::int64_t{3},
                               std::int64_t{5}, n}) {
      if (radix < 2 || radix > n) continue;
      for (int k : {1, 2, 4}) {
        if (!seen.insert({n, radix, k}).second) continue;
        cases.push_back(Case{n, radix, k, 3});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, BruckCrossCheck,
                         ::testing::ValuesIn(bruck_grid()),
                         [](const auto& pinfo) { return case_name(pinfo.param); });

class DirectCrossCheck : public ::testing::TestWithParam<Case> {};

TEST_P(DirectCrossCheck, TraceEqualsScheduleEqualsClosedForm) {
  const auto [n, radix, k, b] = GetParam();
  (void)radix;
  const testutil::CollRun run = testutil::run_index(
      n, k, b,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::index_direct(comm, send, recv, b,
                                  coll::IndexDirectOptions{0});
      });
  ASSERT_EQ(run.error, "");
  sched::Schedule executed = run.trace->to_schedule();
  sched::Schedule built = sched::build_index_direct(n, k, b);
  built.normalize();
  EXPECT_TRUE(executed == built);
  EXPECT_EQ(executed.metrics(), model::index_direct_cost(n, k, b));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DirectCrossCheck,
    ::testing::Values(Case{2, 0, 1, 3}, Case{5, 0, 1, 3}, Case{5, 0, 2, 3},
                      Case{9, 0, 3, 5}, Case{16, 0, 1, 1}, Case{16, 0, 5, 8},
                      Case{31, 0, 4, 2}),
    [](const auto& pinfo) { return case_name(pinfo.param); });

class PairwiseCrossCheck : public ::testing::TestWithParam<Case> {};

TEST_P(PairwiseCrossCheck, TraceEqualsScheduleEqualsClosedForm) {
  const auto [n, radix, k, b] = GetParam();
  (void)radix;
  const testutil::CollRun run = testutil::run_index(
      n, k, b,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::index_pairwise(comm, send, recv, b,
                                    coll::IndexPairwiseOptions{0});
      });
  ASSERT_EQ(run.error, "");
  sched::Schedule executed = run.trace->to_schedule();
  sched::Schedule built = sched::build_index_pairwise(n, k, b);
  built.normalize();
  EXPECT_TRUE(executed == built);
  EXPECT_EQ(executed.metrics(), model::index_pairwise_cost(n, k, b));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PairwiseCrossCheck,
    ::testing::Values(Case{2, 0, 1, 3}, Case{4, 0, 1, 3}, Case{8, 0, 2, 5},
                      Case{16, 0, 3, 1}, Case{32, 0, 4, 2}),
    [](const auto& pinfo) { return case_name(pinfo.param); });

// ---------------------------------------------------------------------------
// Schedule-level claims of Section 3.2 that need no execution.

TEST(BuiltSchedules, BruckRadixTwoRoundCountIsOptimal) {
  for (std::int64_t n = 2; n <= 64; ++n) {
    const sched::Schedule s = sched::build_index_bruck(n, 2, 1, 1);
    EXPECT_EQ(static_cast<std::int64_t>(s.round_count()), ceil_log(n, 2));
    EXPECT_EQ(s.validate(), "");
  }
}

TEST(BuiltSchedules, MessageSizeNeverExceedsMaxCensusBlocks) {
  // Exact per-message cap is b·radix_max_census(n, r); the paper's looser
  // ⌈n/r⌉ holds whenever n is a power of r (see util/radix.hpp).
  for (std::int64_t n : {5, 12, 16, 27, 64}) {
    for (std::int64_t r : {std::int64_t{2}, std::int64_t{3}, std::int64_t{8}, n}) {
      if (r > n) continue;
      const std::int64_t b = 4;
      const sched::Schedule s = sched::build_index_bruck(n, r, 1, b);
      for (const auto& round : s.rounds()) {
        for (const auto& t : round.transfers) {
          EXPECT_LE(t.bytes, b * radix_max_census(n, r))
              << "n=" << n << " r=" << r;
        }
      }
      if (ipow(r, ceil_log(n, r)) == n) {
        EXPECT_LE(radix_max_census(n, r), ceil_div(n, r));
      }
    }
  }
}

TEST(BuiltSchedules, EveryRankSendsAndReceivesSameTotals) {
  // The index pattern is perfectly symmetric: every rank moves the same
  // number of bytes in and out.
  const sched::Schedule s = sched::build_index_bruck(13, 3, 2, 7);
  std::vector<std::int64_t> sent(13, 0), recv(13, 0);
  for (const auto& round : s.rounds()) {
    for (const auto& t : round.transfers) {
      sent[static_cast<std::size_t>(t.src)] += t.bytes;
      recv[static_cast<std::size_t>(t.dst)] += t.bytes;
    }
  }
  for (std::size_t i = 1; i < 13; ++i) {
    EXPECT_EQ(sent[i], sent[0]);
    EXPECT_EQ(recv[i], recv[0]);
  }
  EXPECT_EQ(sent[0], recv[0]);
}

TEST(BuiltSchedules, EmptyForDegenerateInputs) {
  EXPECT_EQ(sched::build_index_bruck(1, 2, 1, 4).round_count(), 0u);
  EXPECT_EQ(sched::build_index_bruck(5, 2, 1, 0).round_count(), 0u);
  EXPECT_EQ(sched::build_index_direct(1, 1, 4).round_count(), 0u);
  EXPECT_EQ(sched::build_index_pairwise(1, 1, 4).round_count(), 0u);
}

}  // namespace
}  // namespace bruck
