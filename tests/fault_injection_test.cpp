// Failure injection: wrap the communicator with faults (payload corruption,
// dropped messages, truncation) and assert that the verification machinery
// and the substrate's sequencing checks catch every one of them.  These are
// meta-tests — they establish that a silent-corruption bug in the library
// could not slip past the content checks the rest of the suite relies on.
#include <gtest/gtest.h>

#include <vector>

#include "coll/concat_bruck.hpp"
#include "coll/index_bruck.hpp"
#include "coll/verify.hpp"
#include "mps/runtime.hpp"
#include "util/assert.hpp"

namespace bruck::mps {
namespace {

using namespace std::chrono_literals;

enum class Fault {
  kNone,
  kFlipByte,      ///< corrupt one byte of one message
  kDropMessage,   ///< swallow one send entirely
  kTruncate,      ///< shorten one message by a byte
};

/// A communicator that injects a fault into the `target_send`-th send of
/// one designated rank.
class FaultyComm final : public Communicator {
 public:
  FaultyComm(Communicator& inner, Fault fault, std::int64_t faulty_rank,
             int target_send)
      : inner_(&inner),
        fault_(fault),
        faulty_rank_(faulty_rank),
        target_send_(target_send) {}

  [[nodiscard]] std::int64_t rank() const override { return inner_->rank(); }
  [[nodiscard]] std::int64_t size() const override { return inner_->size(); }
  [[nodiscard]] int ports() const override { return inner_->ports(); }
  void barrier() override { inner_->barrier(); }

  void exchange(int round, std::span<const SendSpec> sends,
                std::span<const RecvSpec> recvs) override {
    std::vector<SendSpec> patched(sends.begin(), sends.end());
    std::vector<std::vector<std::byte>> storage;
    if (rank() == faulty_rank_) {
      for (std::size_t i = 0; i < patched.size(); ++i) {
        if (send_counter_++ != target_send_) continue;
        switch (fault_) {
          case Fault::kNone:
            break;
          case Fault::kFlipByte: {
            storage.emplace_back(patched[i].data.begin(),
                                 patched[i].data.end());
            storage.back()[storage.back().size() / 2] ^= std::byte{0x40};
            patched[i].data = storage.back();
            break;
          }
          case Fault::kTruncate: {
            storage.emplace_back(patched[i].data.begin(),
                                 patched[i].data.end() - 1);
            patched[i].data = storage.back();
            break;
          }
          case Fault::kDropMessage: {
            patched.erase(patched.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
        break;
      }
    }
    inner_->exchange(round, patched, recvs);
  }

 private:
  Communicator* inner_;
  Fault fault_;
  std::int64_t faulty_rank_;
  int target_send_;
  int send_counter_ = 0;
};

/// Run the index collective under a fault; returns the first content error
/// (for corruption faults) — transport-level faults throw instead.
std::string run_with_fault(Fault fault, int target_send) {
  const std::int64_t n = 8;
  const std::int64_t b = 16;
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  FabricOptions options;
  options.n = n;
  options.k = 1;
  options.recv_timeout = 500ms;
  run_spmd(options, [&](Communicator& comm) {
    FaultyComm faulty(comm, fault, /*faulty_rank=*/3, target_send);
    std::vector<std::byte> send(static_cast<std::size_t>(n * b));
    std::vector<std::byte> recv(send.size());
    coll::fill_index_send(send, n, comm.rank(), b, 13);
    coll::index_bruck(faulty, send, recv, b, coll::IndexBruckOptions{2, 0});
    errors[static_cast<std::size_t>(comm.rank())] =
        coll::check_index_recv(recv, n, comm.rank(), b, 13);
  });
  for (const std::string& e : errors) {
    if (!e.empty()) return e;
  }
  return {};
}

TEST(FaultInjection, CleanRunPassesThroughTheWrapper) {
  EXPECT_EQ(run_with_fault(Fault::kNone, 0), "");
}

TEST(FaultInjection, ByteFlipIsCaughtByContentCheck) {
  // Corrupting any send of rank 3 must surface as a content mismatch at
  // some receiver (possibly after forwarding — that is the point of
  // end-to-end payload verification).
  for (int target : {0, 1, 2}) {
    const std::string err = run_with_fault(Fault::kFlipByte, target);
    EXPECT_NE(err, "") << "flip of send " << target << " went unnoticed";
    EXPECT_NE(err.find("expected"), std::string::npos);
  }
}

TEST(FaultInjection, TruncationIsCaughtBySizeSequencing) {
  EXPECT_THROW((void)run_with_fault(Fault::kTruncate, 1), ContractViolation);
}

TEST(FaultInjection, DroppedMessageSurfacesAsTimeoutOrMismatch) {
  // The victim blocks on a receive that never comes (timeout) or — if a
  // later message from the same source arrives first — trips the sequence
  // check.  Either way: a loud ContractViolation, never silent corruption.
  EXPECT_THROW((void)run_with_fault(Fault::kDropMessage, 0),
               ContractViolation);
}

TEST(FaultInjection, ConcatContentCheckCatchesCorruption) {
  const std::int64_t n = 9;
  const std::int64_t b = 8;
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  run_spmd(n, 1, [&](Communicator& comm) {
    FaultyComm faulty(comm, Fault::kFlipByte, /*faulty_rank=*/2,
                      /*target_send=*/1);
    std::vector<std::byte> send(static_cast<std::size_t>(b));
    std::vector<std::byte> recv(static_cast<std::size_t>(n * b));
    coll::fill_concat_send(send, comm.rank(), b, 19);
    coll::concat_bruck(faulty, send, recv, b, {});
    errors[static_cast<std::size_t>(comm.rank())] =
        coll::check_concat_recv(recv, n, b, 19);
  });
  bool any = false;
  for (const std::string& e : errors) any = any || !e.empty();
  EXPECT_TRUE(any) << "corrupted concat went unnoticed";
}

}  // namespace
}  // namespace bruck::mps
