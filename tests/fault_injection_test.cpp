// Failure injection: wrap the communicator with faults (payload corruption,
// dropped messages, truncation) and assert that the verification machinery
// and the substrate's sequencing checks catch every one of them.  These are
// meta-tests — they establish that a silent-corruption bug in the library
// could not slip past the content checks the rest of the suite relies on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "coll/api.hpp"
#include "coll/concat_bruck.hpp"
#include "coll/index_bruck.hpp"
#include "coll/verify.hpp"
#include "mps/bootstrap.hpp"
#include "mps/runtime.hpp"
#include "util/assert.hpp"

namespace bruck::mps {
namespace {

using namespace std::chrono_literals;

enum class Fault {
  kNone,
  kFlipByte,      ///< corrupt one byte of one message
  kDropMessage,   ///< swallow one send entirely
  kTruncate,      ///< shorten one message by a byte
};

/// A communicator that injects a fault into the `target_send`-th send of
/// one designated rank.
class FaultyComm final : public Communicator {
 public:
  FaultyComm(Communicator& inner, Fault fault, std::int64_t faulty_rank,
             int target_send)
      : inner_(&inner),
        fault_(fault),
        faulty_rank_(faulty_rank),
        target_send_(target_send) {}

  [[nodiscard]] std::int64_t rank() const override { return inner_->rank(); }
  [[nodiscard]] std::int64_t size() const override { return inner_->size(); }
  [[nodiscard]] int ports() const override { return inner_->ports(); }
  void barrier() override { inner_->barrier(); }

  void exchange(int round, std::span<const SendSpec> sends,
                std::span<const RecvSpec> recvs) override {
    std::vector<SendSpec> patched(sends.begin(), sends.end());
    std::vector<std::vector<std::byte>> storage;
    if (rank() == faulty_rank_) {
      for (std::size_t i = 0; i < patched.size(); ++i) {
        if (send_counter_++ != target_send_) continue;
        switch (fault_) {
          case Fault::kNone:
            break;
          case Fault::kFlipByte: {
            storage.emplace_back(patched[i].data.begin(),
                                 patched[i].data.end());
            storage.back()[storage.back().size() / 2] ^= std::byte{0x40};
            patched[i].data = storage.back();
            break;
          }
          case Fault::kTruncate: {
            storage.emplace_back(patched[i].data.begin(),
                                 patched[i].data.end() - 1);
            patched[i].data = storage.back();
            break;
          }
          case Fault::kDropMessage: {
            patched.erase(patched.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
        break;
      }
    }
    inner_->exchange(round, patched, recvs);
  }

 private:
  Communicator* inner_;
  Fault fault_;
  std::int64_t faulty_rank_;
  int target_send_;
  int send_counter_ = 0;
};

/// Run the index collective under a fault; returns the first content error
/// (for corruption faults) — transport-level faults throw instead.
std::string run_with_fault(Fault fault, int target_send) {
  const std::int64_t n = 8;
  const std::int64_t b = 16;
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  FabricOptions options;
  options.n = n;
  options.k = 1;
  options.recv_timeout = 500ms;
  run_spmd(options, [&](Communicator& comm) {
    FaultyComm faulty(comm, fault, /*faulty_rank=*/3, target_send);
    std::vector<std::byte> send(static_cast<std::size_t>(n * b));
    std::vector<std::byte> recv(send.size());
    coll::fill_index_send(send, n, comm.rank(), b, 13);
    coll::index_bruck(faulty, send, recv, b, coll::IndexBruckOptions{2, 0});
    errors[static_cast<std::size_t>(comm.rank())] =
        coll::check_index_recv(recv, n, comm.rank(), b, 13);
  });
  for (const std::string& e : errors) {
    if (!e.empty()) return e;
  }
  return {};
}

TEST(FaultInjection, CleanRunPassesThroughTheWrapper) {
  EXPECT_EQ(run_with_fault(Fault::kNone, 0), "");
}

TEST(FaultInjection, ByteFlipIsCaughtByContentCheck) {
  // Corrupting any send of rank 3 must surface as a content mismatch at
  // some receiver (possibly after forwarding — that is the point of
  // end-to-end payload verification).
  for (int target : {0, 1, 2}) {
    const std::string err = run_with_fault(Fault::kFlipByte, target);
    EXPECT_NE(err, "") << "flip of send " << target << " went unnoticed";
    EXPECT_NE(err.find("expected"), std::string::npos);
  }
}

TEST(FaultInjection, TruncationIsCaughtBySizeSequencing) {
  EXPECT_THROW((void)run_with_fault(Fault::kTruncate, 1), ContractViolation);
}

TEST(FaultInjection, DroppedMessageSurfacesAsTimeoutOrMismatch) {
  // The victim blocks on a receive that never comes (timeout) or — if a
  // later message from the same source arrives first — trips the sequence
  // check.  Either way: a loud ContractViolation, never silent corruption.
  EXPECT_THROW((void)run_with_fault(Fault::kDropMessage, 0),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// Process-fabric faults: real rank processes dying, real sockets stalling.
// The contract is always the same — a *clean, prompt* ContractViolation in
// the survivors (propagated out of spawn_local), never a hang to the ctest
// timeout and never silent corruption.

/// A deliberately generous bound that is still far below the fabric's
/// receive deadline: failing it means the survivors sat out (part of) the
/// drain budget instead of reacting to the death signal.
constexpr auto kPromptness = std::chrono::seconds(20);

std::chrono::milliseconds timed_expect_spawn_failure(
    const SpawnOptions& options,
    const std::function<std::vector<std::byte>(Communicator&)>& body) {
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)spawn_local(options, body), ContractViolation);
  return std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
}

/// Body where rank 1 dies abruptly mid-collective while everyone else is
/// blocked waiting on its traffic.
std::vector<std::byte> die_mid_round_body(Communicator& comm) {
  const std::int64_t n = comm.size();
  const std::int64_t b = 64;
  std::vector<std::byte> send(static_cast<std::size_t>(n * b));
  std::vector<std::byte> recv(send.size());
  coll::fill_index_send(send, n, comm.rank(), b, 7);
  if (comm.rank() == 1) {
    ::_exit(3);  // no result record, no socket teardown, no shm unwind
  }
  coll::alltoall(comm, send, recv, b, {});
  return recv;
}

TEST(FaultInjection, ShmPeerDeathMidRoundFailsFastNotHangs) {
  SpawnOptions so;
  so.n = 4;
  so.k = 2;
  so.backend = FabricBackend::kShm;
  // A deadline far beyond the promptness bound: surviving ranks must be
  // unblocked by the launcher's abort flag, not by waiting this out.
  so.recv_timeout = std::chrono::milliseconds(120000);
  const auto elapsed = timed_expect_spawn_failure(so, die_mid_round_body);
  EXPECT_LT(elapsed, kPromptness)
      << "shm survivors waited out the deadline instead of aborting";
}

TEST(FaultInjection, SocketPeerDeathMidRoundFailsFastNotHangs) {
  SpawnOptions so;
  so.n = 4;
  so.k = 2;
  so.backend = FabricBackend::kSocket;
  so.recv_timeout = std::chrono::milliseconds(120000);
  const auto elapsed = timed_expect_spawn_failure(so, die_mid_round_body);
  EXPECT_LT(elapsed, kPromptness)
      << "socket survivors ignored the EOF from the dead peer";
}

TEST(FaultInjection, ShortSocketWritesStayBitwiseCorrect) {
  // Cap every ::send at 3 bytes: each 40-byte frame header crosses many
  // partial writes, so the outbox/reassembly paths run constantly.  The
  // run must still complete and match the thread oracle bitwise.
  const std::int64_t n = 3;
  const std::int64_t b = 96;
  const auto body = [n, b](Communicator& comm) {
    std::vector<std::byte> send(static_cast<std::size_t>(n * b));
    std::vector<std::byte> recv(send.size());
    coll::fill_index_send(send, n, comm.rank(), b, 23);
    coll::alltoall(comm, send, recv, b, {});
    return recv;
  };
  SpawnOptions oracle_opts;
  oracle_opts.n = n;
  oracle_opts.k = 2;
  oracle_opts.backend = FabricBackend::kThread;
  const SpawnResult oracle = spawn_local(oracle_opts, body);

  ASSERT_EQ(::setenv("BRUCK_SOCKET_MAX_WRITE_BYTES", "3", 1), 0);
  SpawnOptions so = oracle_opts;
  so.backend = FabricBackend::kSocket;
  so.recv_timeout = std::chrono::milliseconds(60000);
  const SpawnResult got = spawn_local(so, body);
  ::unsetenv("BRUCK_SOCKET_MAX_WRITE_BYTES");
  for (std::int64_t r = 0; r < n; ++r) {
    EXPECT_EQ(got.rank_payloads[static_cast<std::size_t>(r)],
              oracle.rank_payloads[static_cast<std::size_t>(r)])
        << "rank " << r << " diverged under forced short writes";
  }
}

TEST(FaultInjection, SocketDrainDeadlineExpiryIsCleanError) {
  // Rank 1 stays alive (no EOF, so peer-death detection cannot fire) but
  // never sends the message rank 0 is waiting on: the ONE-deadline drain
  // contract must surface a ContractViolation at ~the configured budget.
  SpawnOptions so;
  so.n = 2;
  so.k = 1;
  so.backend = FabricBackend::kSocket;
  so.recv_timeout = std::chrono::milliseconds(1200);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(
      (void)spawn_local(
          so,
          [](Communicator& comm) -> std::vector<std::byte> {
            if (comm.rank() == 0) {
              const PortHandle h = comm.post_recv_buffer(0, 1, 16);
              comm.wait_recv(h);  // never satisfied
              return comm.take_payload(h);
            }
            // Outlive rank 0's deadline without closing the connection.
            std::this_thread::sleep_for(std::chrono::milliseconds(4000));
            return {};
          }),
      ContractViolation);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // One budget for the whole wait: well past 1.2 s, well short of 2×-plus
  // (per-step deadline resets would stretch this arbitrarily).
  EXPECT_GE(elapsed, std::chrono::milliseconds(1100));
  EXPECT_LT(elapsed, std::chrono::milliseconds(15000));
}

TEST(FaultInjection, ShmDrainDeadlineExpiryIsCleanError) {
  SpawnOptions so;
  so.n = 2;
  so.k = 1;
  so.backend = FabricBackend::kShm;
  so.recv_timeout = std::chrono::milliseconds(1200);
  EXPECT_THROW(
      (void)spawn_local(
          so,
          [](Communicator& comm) -> std::vector<std::byte> {
            if (comm.rank() == 0) {
              const PortHandle h = comm.post_recv_buffer(0, 1, 16);
              comm.wait_recv(h);
              return comm.take_payload(h);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(4000));
            return {};
          }),
      ContractViolation);
}

TEST(FaultInjection, ConcatContentCheckCatchesCorruption) {
  const std::int64_t n = 9;
  const std::int64_t b = 8;
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  run_spmd(n, 1, [&](Communicator& comm) {
    FaultyComm faulty(comm, Fault::kFlipByte, /*faulty_rank=*/2,
                      /*target_send=*/1);
    std::vector<std::byte> send(static_cast<std::size_t>(b));
    std::vector<std::byte> recv(static_cast<std::size_t>(n * b));
    coll::fill_concat_send(send, comm.rank(), b, 19);
    coll::concat_bruck(faulty, send, recv, b, {});
    errors[static_cast<std::size_t>(comm.rank())] =
        coll::check_concat_recv(recv, n, b, 19);
  });
  bool any = false;
  for (const std::string& e : errors) any = any || !e.empty();
  EXPECT_TRUE(any) << "corrupted concat went unnoticed";
}

}  // namespace
}  // namespace bruck::mps
