// Block-buffer views and the local phases: the bulk-copy rotation against a
// naive per-block reference, contract checks, and aliasing-free behaviour.
#include "coll/blocks.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace bruck::coll {
namespace {

std::vector<std::byte> random_blocks(std::int64_t n, std::int64_t b,
                                     std::uint64_t seed) {
  std::vector<std::byte> buf(static_cast<std::size_t>(n * b));
  fill_random_bytes(buf, seed);
  return buf;
}

TEST(BlockSpan, AccessorsAndContracts) {
  std::vector<std::byte> buf(12);
  BlockSpan s(buf, 4, 3);
  EXPECT_EQ(s.count(), 4);
  EXPECT_EQ(s.block_bytes(), 3);
  EXPECT_EQ(s.block(2).data(), buf.data() + 6);
  EXPECT_EQ(s.blocks(1, 2).size(), 6u);
  EXPECT_THROW((void)s.block(4), ContractViolation);
  EXPECT_THROW((void)s.blocks(3, 2), ContractViolation);
  EXPECT_THROW(BlockSpan(buf, 5, 3), ContractViolation);  // size mismatch
}

TEST(BlockSpan, ZeroWidthBlocksAreLegal) {
  std::vector<std::byte> empty;
  BlockSpan s(empty, 7, 0);
  EXPECT_EQ(s.count(), 7);
  EXPECT_TRUE(s.block(3).empty());
}

TEST(RotateBlocksUp, MatchesNaiveReferenceExhaustively) {
  for (std::int64_t n : {1, 2, 3, 5, 8, 13}) {
    for (std::int64_t b : {0, 1, 3, 8}) {
      const std::vector<std::byte> src = random_blocks(n, b, 5);
      for (std::int64_t steps = 0; steps <= n + 2; ++steps) {
        std::vector<std::byte> fast(src.size());
        rotate_blocks_up(ConstBlockSpan(src, n, b), BlockSpan(fast, n, b),
                         steps);
        // Naive per-block reference.
        std::vector<std::byte> naive(src.size());
        for (std::int64_t x = 0; x < n; ++x) {
          for (std::int64_t o = 0; o < b; ++o) {
            naive[static_cast<std::size_t>(x * b + o)] =
                src[static_cast<std::size_t>(pos_mod(x + steps, n) * b + o)];
          }
        }
        EXPECT_EQ(fast, naive) << "n=" << n << " b=" << b << " steps=" << steps;
      }
    }
  }
}

TEST(RotateBlocksUp, ZeroStepsIsCopy) {
  const std::vector<std::byte> src = random_blocks(6, 4, 9);
  std::vector<std::byte> dst(src.size());
  rotate_blocks_up(ConstBlockSpan(src, 6, 4), BlockSpan(dst, 6, 4), 0);
  EXPECT_EQ(dst, src);
}

TEST(RotateBlocksUp, NegativeStepsWrap) {
  const std::vector<std::byte> src = random_blocks(5, 2, 11);
  std::vector<std::byte> minus(src.size());
  std::vector<std::byte> plus(src.size());
  rotate_blocks_up(ConstBlockSpan(src, 5, 2), BlockSpan(minus, 5, 2), -2);
  rotate_blocks_up(ConstBlockSpan(src, 5, 2), BlockSpan(plus, 5, 2), 3);
  EXPECT_EQ(minus, plus);
}

TEST(RotateWindowToOrigin, InvertsRotateBlocksUp) {
  // rotate_window_to_origin(rank) undoes rotate_blocks_up(rank): the concat
  // epilogue is the inverse of its (virtual) prologue.
  for (std::int64_t n : {2, 5, 9}) {
    const std::int64_t b = 3;
    const std::vector<std::byte> src = random_blocks(n, b, 13);
    for (std::int64_t rank = 0; rank < n; ++rank) {
      std::vector<std::byte> window(src.size());
      rotate_blocks_up(ConstBlockSpan(src, n, b), BlockSpan(window, n, b),
                       rank);
      std::vector<std::byte> out(src.size());
      rotate_window_to_origin(ConstBlockSpan(window, n, b),
                              BlockSpan(out, n, b), rank);
      EXPECT_EQ(out, src) << "n=" << n << " rank=" << rank;
    }
  }
}

TEST(UnrotateByRank, IsAnInvolutionComposedWithItself) {
  // unrotate_by_rank maps slot (rank − i) to block i; applying the map
  // twice with the same rank restores the original buffer (i ↦ rank − i is
  // an involution mod n).
  const std::int64_t n = 7, b = 2;
  const std::vector<std::byte> src = random_blocks(n, b, 21);
  for (std::int64_t rank = 0; rank < n; ++rank) {
    std::vector<std::byte> once(src.size());
    std::vector<std::byte> twice(src.size());
    unrotate_by_rank(ConstBlockSpan(src, n, b), BlockSpan(once, n, b), rank);
    unrotate_by_rank(ConstBlockSpan(once, n, b), BlockSpan(twice, n, b), rank);
    EXPECT_EQ(twice, src) << "rank=" << rank;
  }
}

}  // namespace
}  // namespace bruck::coll
