// Tests for the analysis extensions: the Proposition 2.3 reduction run
// forward, the event-driven virtual-time evaluator, Lemma C.1's numeric
// content, and the schedule renderers.
#include <gtest/gtest.h>

#include "coll/reduction.hpp"
#include "model/costs.hpp"
#include "model/lemma_c1.hpp"
#include "model/linear_model.hpp"
#include "sched/builders_concat.hpp"
#include "sched/builders_index.hpp"
#include "sched/render.hpp"
#include "sched/virtual_time.hpp"
#include "test_util.hpp"
#include "util/assert.hpp"

namespace bruck {
namespace {

// ---------------------------------------------------------------------------
// Proposition 2.3 reduction, forward.

TEST(ConcatViaIndex, ProducesTheConcatenation) {
  for (std::int64_t n : {1, 2, 5, 9, 16}) {
    for (std::int64_t radix : {std::int64_t{2}, std::int64_t{3}}) {
      if (radix > std::max<std::int64_t>(2, n)) continue;
      const testutil::CollRun run = testutil::run_concat(
          n, 1, 6,
          [&](mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv) {
            return coll::concat_via_index(
                comm, send, recv, 6, coll::ConcatViaIndexOptions{radix, 0});
          });
      EXPECT_EQ(run.error, "") << "n=" << n << " r=" << radix;
    }
  }
}

TEST(ConcatViaIndex, CostsMatchTheUnderlyingIndex) {
  // The reduction inherits the index pattern wholesale: the trace must
  // equal the index algorithm's metrics, and hence cost n× the volume of
  // the dedicated concatenation (the inefficiency the reduction direction
  // of Prop 2.3 doesn't care about).
  const std::int64_t n = 16;
  const std::int64_t b = 6;
  const testutil::CollRun run = testutil::run_concat(
      n, 1, b,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::concat_via_index(comm, send, recv, b,
                                      coll::ConcatViaIndexOptions{2, 0});
      });
  ASSERT_EQ(run.error, "");
  const model::CostMetrics m = run.trace->metrics();
  EXPECT_EQ(m, model::index_bruck_cost(n, 2, 1, b));
  const model::CostMetrics direct =
      model::concat_bruck_cost(n, 1, b, model::ConcatLastRound::kAuto);
  EXPECT_EQ(m.c1, direct.c1) << "same round count (both ceil(log2 n))";
  EXPECT_GT(m.c2, direct.c2) << "but the reduction moves far more data";
}

// ---------------------------------------------------------------------------
// Virtual time.

TEST(VirtualTime, BalancedScheduleMatchesLinearModel) {
  // Every rank sends the round-max in every round of the Bruck patterns, so
  // per-rank clocks advance in lockstep and the makespan equals C1·β + C2·τ.
  const model::LinearModel sp1 = model::ibm_sp1();
  for (std::int64_t n : {4, 8, 16, 64}) {
    for (std::int64_t r : {std::int64_t{2}, std::int64_t{4}, n}) {
      if (r > n) continue;
      const sched::Schedule s = sched::build_index_bruck(n, r, 1, 32);
      const double vt = sched::virtual_makespan_us(s, sp1);
      EXPECT_NEAR(vt, sp1.predict_us(s.metrics()), 1e-6)
          << "n=" << n << " r=" << r;
    }
  }
  const sched::Schedule c =
      sched::build_concat_bruck(27, 2, 8, model::ConcatLastRound::kAuto);
  EXPECT_NEAR(sched::virtual_makespan_us(c, model::ibm_sp1()),
              model::ibm_sp1().predict_us(c.metrics()), 1e-6);
}

TEST(VirtualTime, FolkloreCriticalPathEqualsLinearModel) {
  // Although folklore idles most ranks, every round's maximum message
  // touches rank 0, so the critical path reproduces C1·β + C2·τ exactly —
  // the linear model is *tight* for this tree, a fact the Σ-max definition
  // makes easy to miss.
  const model::LinearModel sp1 = model::ibm_sp1();
  for (std::int64_t n : {4, 6, 8, 16, 21, 32}) {
    const sched::Schedule s = sched::build_concat_folklore(n, 64);
    const sched::VirtualTimeResult vt = sched::virtual_time(s, sp1);
    const double linear = sp1.predict_us(s.metrics());
    EXPECT_LE(vt.makespan_us, linear + 1e-9) << "n=" << n;
    EXPECT_NEAR(vt.makespan_us, linear, 1e-6) << "n=" << n;
  }
}

TEST(VirtualTime, SkewedScheduleBeatsLinearModel) {
  // When the round maxima alternate between disjoint rank pairs, the linear
  // model pays both maxima per round while each pair only waits for its
  // own messages: the virtual-time makespan is strictly smaller.
  const model::LinearModel sp1 = model::ibm_sp1();
  sched::Schedule s(4, 1);
  const std::size_t r0 = s.add_round();
  s.add_transfer(r0, {0, 1, 1000});
  s.add_transfer(r0, {2, 3, 1});
  const std::size_t r1 = s.add_round();
  s.add_transfer(r1, {0, 1, 1});
  s.add_transfer(r1, {2, 3, 1000});
  const sched::VirtualTimeResult vt = sched::virtual_time(s, sp1);
  const double linear = sp1.predict_us(s.metrics());  // 2β + 2000τ
  EXPECT_LT(vt.makespan_us, linear);
  EXPECT_NEAR(vt.makespan_us,
              2 * sp1.beta_us + 1001.0 * sp1.tau_us_per_byte, 1e-9);
  EXPECT_NEAR(vt.total_slack_us, 0.0, 1e-9) << "both pairs finish together";
}

TEST(VirtualTime, FinishTimesAreConsistent) {
  const model::LinearModel sp1 = model::ibm_sp1();
  const sched::Schedule s = sched::build_concat_ring(6, 16);
  const sched::VirtualTimeResult vt = sched::virtual_time(s, sp1);
  ASSERT_EQ(vt.finish_us.size(), 6u);
  double max_finish = 0.0;
  for (double f : vt.finish_us) {
    EXPECT_GE(f, 0.0);
    max_finish = std::max(max_finish, f);
  }
  EXPECT_DOUBLE_EQ(vt.makespan_us, max_finish);
  // The ring is fully balanced: everyone finishes together, zero slack.
  EXPECT_NEAR(vt.total_slack_us, 0.0, 1e-9);
}

TEST(VirtualTime, EmptyScheduleIsFree) {
  const sched::Schedule s(4, 1);
  EXPECT_DOUBLE_EQ(sched::virtual_makespan_us(s, model::ibm_sp1()), 0.0);
}

TEST(VirtualTime, RejectsInvalidSchedules) {
  sched::Schedule s(3, 1);
  s.add_transfer(s.add_round(), {0, 0, 4});
  EXPECT_THROW(sched::virtual_time(s, model::ibm_sp1()), ContractViolation);
}

// ---------------------------------------------------------------------------
// Lemma C.1.

TEST(LemmaC1, BoundHoldsAcrossGrid) {
  for (std::int64_t c : {2, 3, 4, 8}) {
    for (std::int64_t m = c; m <= 600; m += 7) {
      if (c * m > 10000) continue;
      const std::int64_t h = model::lemma_c1_minimal_h(m, c);
      EXPECT_GE(static_cast<double>(h), model::lemma_c1_bound(m, c))
          << "m=" << m << " c=" << c;
      EXPECT_LE(h, m) << "Σ_{j<=m} C(cm, j) > 2^m trivially";
    }
  }
}

TEST(LemmaC1, MinimalHIsMinimal) {
  // h−1 must not satisfy the sum condition; verified indirectly: h is
  // nondecreasing in m for fixed c (more mass needed) and the h = 0 case
  // appears only for the degenerate smallest inputs.
  std::int64_t prev = 0;
  for (std::int64_t m = 2; m <= 200; ++m) {
    const std::int64_t h = model::lemma_c1_minimal_h(m, 2);
    EXPECT_GE(h, prev) << "m=" << m;
    prev = h;
  }
  EXPECT_GT(prev, 0);
}

TEST(LemmaC1, RejectsBadArguments) {
  EXPECT_THROW((void)model::lemma_c1_minimal_h(1, 2), ContractViolation);
  EXPECT_THROW((void)model::lemma_c1_minimal_h(10, 1), ContractViolation);
  EXPECT_THROW((void)model::lemma_c1_minimal_h(10000, 2), ContractViolation);
}

// ---------------------------------------------------------------------------
// Renderers.

TEST(Render, RoundsListingMatchesSchedule) {
  sched::Schedule s(3, 1);
  const std::size_t r0 = s.add_round();
  s.add_transfer(r0, {1, 2, 7});
  s.add_transfer(r0, {0, 1, 5});
  const std::size_t r1 = s.add_round();
  s.add_transfer(r1, {2, 0, 3});
  const std::string out = sched::render_rounds(s);
  EXPECT_EQ(out, "round 0: 0->1:5 1->2:7\nround 1: 2->0:3\n");
}

TEST(Render, TrafficMatrixSumsAreRight) {
  const sched::Schedule s = sched::build_index_direct(4, 1, 2);
  const std::string out = sched::render_traffic_matrix(s);
  // Every off-diagonal pair exchanges one 2-byte block: row sums 6.
  EXPECT_NE(out.find("bytes sent"), std::string::npos);
  EXPECT_NE(out.find("6"), std::string::npos) << out;
  // Diagonal must be all zeros (no self traffic).
  const sched::Schedule bruck = sched::build_index_bruck(5, 2, 1, 3);
  const std::string grid = sched::render_traffic_matrix(bruck);
  EXPECT_NE(grid.find("sum"), std::string::npos);
}

}  // namespace
}  // namespace bruck
