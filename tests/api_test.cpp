// The CCL-style dispatch layer: planning, auto-tuning and execution.
#include "coll/api.hpp"

#include <gtest/gtest.h>

#include "model/costs.hpp"
#include "test_util.hpp"

namespace bruck::coll {
namespace {

TEST(PlanAlltoall, AutoPicksTheModelOptimum) {
  AlltoallOptions options;
  options.machine = model::ibm_sp1();
  // Tiny blocks on SP-1: start-up dominates → radix 2.
  const AlltoallPlan small = plan_alltoall(64, 1, 1, options);
  EXPECT_EQ(small.algorithm, IndexAlgorithm::kBruck);
  EXPECT_EQ(small.radix, 2);
  // Huge blocks: transfer dominates → the volume-optimal shape
  // (C2 = b(n−1), C1 = n−1).  For n = 64 both r = 63 and r = 64 realize it;
  // the tie-break picks the smaller radix.
  const AlltoallPlan large = plan_alltoall(64, 1, 1 << 16, options);
  EXPECT_GE(large.radix, 63);
  EXPECT_EQ(large.predicted.c1, 63);
  EXPECT_EQ(large.predicted.c2, std::int64_t{63} * (1 << 16));
  EXPECT_LT(large.predicted_us,
            options.machine.predict_us(model::index_bruck_cost(64, 2, 1, 1 << 16)));
}

TEST(PlanAlltoall, ExplicitRadixIsHonored) {
  AlltoallOptions options;
  options.algorithm = IndexAlgorithm::kBruck;
  options.radix = 8;
  const AlltoallPlan plan = plan_alltoall(64, 1, 256, options);
  EXPECT_EQ(plan.radix, 8);
  EXPECT_EQ(plan.predicted, model::index_bruck_cost(64, 8, 1, 256));
}

TEST(PlanAlltoall, DirectAndPairwisePlans) {
  AlltoallOptions options;
  options.algorithm = IndexAlgorithm::kDirect;
  EXPECT_EQ(plan_alltoall(10, 2, 4, options).predicted,
            model::index_direct_cost(10, 2, 4));
  options.algorithm = IndexAlgorithm::kPairwise;
  EXPECT_EQ(plan_alltoall(16, 2, 4, options).predicted,
            model::index_pairwise_cost(16, 2, 4));
}

TEST(ToString, CoversAllEnumerators) {
  EXPECT_EQ(to_string(IndexAlgorithm::kBruck), "bruck");
  EXPECT_EQ(to_string(IndexAlgorithm::kDirect), "direct");
  EXPECT_EQ(to_string(IndexAlgorithm::kPairwise), "pairwise");
  EXPECT_EQ(to_string(IndexAlgorithm::kAuto), "auto");
  EXPECT_EQ(to_string(ConcatAlgorithm::kBruck), "bruck");
  EXPECT_EQ(to_string(ConcatAlgorithm::kFolklore), "folklore");
  EXPECT_EQ(to_string(ConcatAlgorithm::kRing), "ring");
  EXPECT_EQ(to_string(ConcatAlgorithm::kAuto), "auto");
}

TEST(Alltoall, AutoDeliversCorrectContents) {
  for (std::int64_t n : {1, 4, 7, 16}) {
    for (std::int64_t b : {1, 8, 300}) {
      const testutil::CollRun run = testutil::run_index(
          n, 1, b,
          [&](mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv) {
            return alltoall(comm, send, recv, b);
          });
      EXPECT_EQ(run.error, "") << "n=" << n << " b=" << b;
    }
  }
}

TEST(Alltoall, EveryAlgorithmChoiceWorksThroughTheFacade) {
  for (IndexAlgorithm alg : {IndexAlgorithm::kBruck, IndexAlgorithm::kDirect,
                             IndexAlgorithm::kPairwise}) {
    AlltoallOptions options;
    options.algorithm = alg;
    const testutil::CollRun run = testutil::run_index(
        8, 2, 6,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return alltoall(comm, send, recv, 6, options);
        });
    EXPECT_EQ(run.error, "") << to_string(alg);
  }
}

TEST(Allgather, AutoDeliversCorrectContents) {
  for (std::int64_t n : {1, 5, 9, 17}) {
    for (int k : {1, 3}) {
      const testutil::CollRun run = testutil::run_concat(
          n, k, 12,
          [&](mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv) {
            return allgather(comm, send, recv, 12);
          });
      EXPECT_EQ(run.error, "") << "n=" << n << " k=" << k;
    }
  }
}

TEST(Allgather, EveryAlgorithmChoiceWorksThroughTheFacade) {
  for (ConcatAlgorithm alg : {ConcatAlgorithm::kBruck, ConcatAlgorithm::kFolklore,
                              ConcatAlgorithm::kRing}) {
    AllgatherOptions options;
    options.algorithm = alg;
    const testutil::CollRun run = testutil::run_concat(
        9, 1, 5,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return allgather(comm, send, recv, 5, options);
        });
    EXPECT_EQ(run.error, "") << to_string(alg);
  }
}

TEST(Allgather, StrategyOverrideIsForwarded) {
  AllgatherOptions options;
  options.last_round = model::ConcatLastRound::kTwoRound;
  const testutil::CollRun run = testutil::run_concat(
      13, 3, 4,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return allgather(comm, send, recv, 4, options);
      });
  EXPECT_EQ(run.error, "");
  EXPECT_EQ(run.trace->metrics().c1,
            model::concat_bruck_cost(13, 3, 4,
                                     model::ConcatLastRound::kTwoRound)
                .c1);
}

}  // namespace
}  // namespace bruck::coll
