// The SIMD combine kernels: dispatch pinning and bitwise oracle checks.
//
// Before the kernels landed, ReduceOp::combine ran one memcpy-in /
// memcpy-out round trip *per element* even for contiguous same-type runs —
// the regression this file pins is that built-in operators now dispatch to
// the typed vectorizable loops (kAlignedVector on element-aligned buffer
// pairs, kChunkedVector otherwise) and that both produce bit-identical
// results to the preserved pre-SIMD loop (combine_elementwise_reference)
// for every (kind, element) pair and every misalignment.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "coll/reduction.hpp"
#include "util/rng.hpp"

namespace bruck::coll {
namespace {

/// Fill `bytes` worth of elements with exact small values (prod stays in
/// ±2^20, float sums stay integer-exact) so every kernel and association
/// order must agree bitwise.
void fill_elems(std::byte* p, std::int64_t bytes, ReduceElem elem,
                std::uint64_t seed) {
  SplitMix64 rng(seed);
  const std::int64_t w = (elem == ReduceElem::kI32 || elem == ReduceElem::kF32)
                             ? 4
                             : 8;
  for (std::int64_t i = 0; i + w <= bytes; i += w) {
    // Values in {-2, -1, 1, 2}: safe under sum/min/max *and* prod.
    const std::int64_t vals[] = {-2, -1, 1, 2};
    const std::int64_t v = vals[rng.next_below(4)];
    switch (elem) {
      case ReduceElem::kI32: {
        const std::int32_t x = static_cast<std::int32_t>(v);
        std::memcpy(p + i, &x, 4);
        break;
      }
      case ReduceElem::kI64:
        std::memcpy(p + i, &v, 8);
        break;
      case ReduceElem::kF32: {
        const float x = static_cast<float>(v);
        std::memcpy(p + i, &x, 4);
        break;
      }
      case ReduceElem::kF64: {
        const double x = static_cast<double>(v);
        std::memcpy(p + i, &x, 8);
        break;
      }
    }
  }
}

TEST(CombineKernels, DispatchPinning) {
  // 16-byte-aligned backing store so we control the offsets exactly.
  alignas(16) std::byte acc[64];
  alignas(16) std::byte in[64];
  const ReduceOp f64 = ReduceOp::sum(ReduceElem::kF64);
  EXPECT_EQ(combine_path(f64, acc, in), CombinePath::kAlignedVector);
  // Either side off its element width falls back to the chunked kernel.
  EXPECT_EQ(combine_path(f64, acc + 1, in), CombinePath::kChunkedVector);
  EXPECT_EQ(combine_path(f64, acc, in + 4), CombinePath::kChunkedVector);
  // 4-byte types only need 4-byte alignment.
  const ReduceOp f32 = ReduceOp::sum(ReduceElem::kF32);
  EXPECT_EQ(combine_path(f32, acc + 4, in + 4), CombinePath::kAlignedVector);
  // User operators always take the escape hatch.
  const ReduceOp user = ReduceOp::user(
      [](std::byte* a, const std::byte* b, std::int64_t count, void*) {
        for (std::int64_t i = 0; i < count; ++i) a[i] ^= b[i];
      },
      1);
  EXPECT_EQ(combine_path(user, acc, in), CombinePath::kUser);
}

TEST(CombineKernels, BuiltinsMatchReferenceBitwise) {
  const ReduceKind kinds[] = {ReduceKind::kSum, ReduceKind::kMin,
                              ReduceKind::kMax, ReduceKind::kProd};
  const ReduceElem elems[] = {ReduceElem::kI32, ReduceElem::kI64,
                              ReduceElem::kF32, ReduceElem::kF64};
  const std::int64_t bytes = 4096;
  std::uint64_t seed = 0xC031;
  for (const ReduceKind kind : kinds) {
    for (const ReduceElem elem : elems) {
      ReduceOp op;
      switch (kind) {
        case ReduceKind::kSum: op = ReduceOp::sum(elem); break;
        case ReduceKind::kMin: op = ReduceOp::min(elem); break;
        case ReduceKind::kMax: op = ReduceOp::max(elem); break;
        case ReduceKind::kProd: op = ReduceOp::prod(elem); break;
        case ReduceKind::kUser: break;
      }
      SCOPED_TRACE(op.name());
      std::vector<std::byte> acc(static_cast<std::size_t>(bytes));
      std::vector<std::byte> in(static_cast<std::size_t>(bytes));
      fill_elems(acc.data(), bytes, elem, ++seed);
      fill_elems(in.data(), bytes, elem, ++seed);
      std::vector<std::byte> want = acc;
      combine_elementwise_reference(op, want.data(), in.data(), bytes);
      ASSERT_EQ(combine_path(op, acc.data(), in.data()),
                CombinePath::kAlignedVector);
      op.combine(acc.data(), in.data(), bytes);
      EXPECT_EQ(std::memcmp(acc.data(), want.data(),
                            static_cast<std::size_t>(bytes)),
                0);
    }
  }
}

TEST(CombineKernels, ChunkedKernelMatchesReferenceAtEveryMisalignment) {
  // Slide both buffers across a 16-byte window: every offset pair that is
  // not element-aligned must route through kChunkedVector and still agree
  // with the reference loop bitwise.
  const std::int64_t bytes = 1024;
  const ReduceOp op = ReduceOp::sum(ReduceElem::kF64);
  std::vector<std::byte> acc_store(static_cast<std::size_t>(bytes) + 16);
  std::vector<std::byte> in_store(static_cast<std::size_t>(bytes) + 16);
  for (std::int64_t a_off = 0; a_off < 8; ++a_off) {
    for (std::int64_t i_off : {0, 1, 7}) {
      fill_elems(acc_store.data() + a_off, bytes, ReduceElem::kF64, 5);
      fill_elems(in_store.data() + i_off, bytes, ReduceElem::kF64, 6);
      std::vector<std::byte> want(static_cast<std::size_t>(bytes));
      std::memcpy(want.data(), acc_store.data() + a_off,
                  static_cast<std::size_t>(bytes));
      combine_elementwise_reference(op, want.data(),
                                    in_store.data() + i_off, bytes);
      op.combine(acc_store.data() + a_off, in_store.data() + i_off, bytes);
      EXPECT_EQ(std::memcmp(acc_store.data() + a_off, want.data(),
                            static_cast<std::size_t>(bytes)),
                0)
          << "a_off=" << a_off << " i_off=" << i_off;
    }
  }
}

TEST(CombineKernels, UserOperatorRoundTrip) {
  // Odd element width (3 bytes) through the escape hatch: the kernel work
  // must be byte-exact and the path pinned to kUser.
  const ReduceOp op = ReduceOp::user(
      [](std::byte* a, const std::byte* b, std::int64_t count, void*) {
        for (std::int64_t i = 0; i < count * 3; ++i) a[i] ^= b[i];
      },
      3);
  std::vector<std::byte> acc(300);
  std::vector<std::byte> in(300);
  fill_random_bytes(acc, 21);
  fill_random_bytes(in, 22);
  std::vector<std::byte> want = acc;
  combine_elementwise_reference(op, want.data(), in.data(), 300);
  EXPECT_EQ(combine_path(op, acc.data(), in.data()), CombinePath::kUser);
  op.combine(acc.data(), in.data(), 300);
  EXPECT_EQ(std::memcmp(acc.data(), want.data(), 300), 0);
}

}  // namespace
}  // namespace bruck::coll
