// Hierarchical (two-level leader-model) collectives: randomized shape
// sweeps of the composite lowerings against the flat reference oracle
// (payload compared bitwise), executor trace agreement, degenerate
// partitions (singleton groups, one whole-fabric group, non-dividing group
// sizes, the n = 1 fabric), the tuner's flat-vs-hierarchical pick at both
// extremes of the intra/inter cost ratio, and the BRUCK_HIER /
// BRUCK_HIER_GROUP_SIZE knobs end-to-end through the plain facade.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "coll/api.hpp"
#include "coll/composite.hpp"
#include "coll/verify.hpp"
#include "model/tuner.hpp"
#include "mps/runtime.hpp"
#include "util/rng.hpp"

namespace bruck {
namespace {

using coll::AllgatherOptions;
using coll::AlltoallOptions;
using coll::ExecutionPath;
using coll::HierMode;
using coll::ReduceElem;
using coll::ReduceOp;
using coll::ReduceScatterOptions;

struct HierCase {
  std::int64_t n = 2;
  std::int64_t g = 1;  ///< forced nominal group size
  int k = 1;
  std::int64_t b = 1;  ///< block bytes (reduce tests scale by elem size)
};

std::string label(const HierCase& c) {
  return "n=" + std::to_string(c.n) + " g=" + std::to_string(c.g) +
         " k=" + std::to_string(c.k) + " b=" + std::to_string(c.b);
}

/// Hand-picked degenerates — g = 1 (every rank its own leader), g = n (one
/// group, trivial inter stage), non-dividing group sizes with a smaller
/// last group, the n = 1 fabric — plus a fixed-seed random sweep n ≤ 32.
std::vector<HierCase> sweep_cases() {
  std::vector<HierCase> cases = {
      {1, 1, 1, 4},   {2, 1, 1, 3},  {2, 2, 1, 5},   {4, 2, 2, 8},
      {5, 2, 1, 3},   {6, 4, 2, 7},  {7, 3, 1, 2},   {8, 4, 2, 16},
      {9, 3, 2, 1},   {12, 5, 3, 6}, {16, 4, 2, 4},  {16, 16, 1, 3},
      {32, 8, 2, 2},
  };
  SplitMix64 rng(0x41E12A11);
  for (int trial = 0; trial < 10; ++trial) {
    HierCase c;
    c.n = 2 + static_cast<std::int64_t>(rng.next_below(31));
    c.g = 1 + static_cast<std::int64_t>(
                  rng.next_below(static_cast<std::uint64_t>(c.n)));
    c.k = 1 + static_cast<int>(rng.next_below(3));
    c.b = 1 + static_cast<std::int64_t>(rng.next_below(12));
    cases.push_back(c);
  }
  return cases;
}

AlltoallOptions hier_alltoall(std::int64_t g, ExecutionPath path, int start) {
  AlltoallOptions o;
  o.hier = HierMode::kOn;
  o.hier_group = g;
  o.path = path;
  o.start_round = start;
  return o;
}

AllgatherOptions hier_allgather(std::int64_t g, ExecutionPath path,
                                int start) {
  AllgatherOptions o;
  o.hier = HierMode::kOn;
  o.hier_group = g;
  o.path = path;
  o.start_round = start;
  return o;
}

ReduceScatterOptions hier_reduce_scatter(std::int64_t g, ExecutionPath path,
                                         int start) {
  ReduceScatterOptions o;
  o.hier = HierMode::kOn;
  o.hier_group = g;
  o.path = path;
  o.start_round = start;
  return o;
}

// ---------------------------------------------------------------------------
// Payload sweeps: hierarchical execution must be bitwise-identical to the
// flat reference oracle on every shape, through both plan executors.

TEST(Hierarchical, AlltoallMatchesFlatOracleBitwise) {
  for (const HierCase& c : sweep_cases()) {
    SCOPED_TRACE(label(c));
    const std::uint64_t seed = 0xA110A11u ^ static_cast<std::uint64_t>(
                                                c.n * 1000 + c.g * 10 + c.b);
    std::vector<std::string> errors(static_cast<std::size_t>(c.n));
    mps::run_spmd(c.n, c.k, [&](mps::Communicator& comm) {
      const std::int64_t rank = comm.rank();
      auto& err = errors[static_cast<std::size_t>(rank)];
      const std::size_t bytes = static_cast<std::size_t>(c.n * c.b);
      std::vector<std::byte> send(bytes);
      std::vector<std::byte> want(bytes, std::byte{0xEE});
      std::vector<std::byte> got_c(bytes, std::byte{0xEE});
      std::vector<std::byte> got_p(bytes, std::byte{0xEE});
      coll::fill_index_send(send, c.n, rank, c.b, seed);

      AlltoallOptions ref;
      ref.path = ExecutionPath::kReference;
      ref.hier = HierMode::kOff;
      int round = coll::alltoall(comm, send, want, c.b, ref);
      round = coll::alltoall(comm, send, got_c, c.b,
                             hier_alltoall(c.g, ExecutionPath::kCompiled,
                                           round));
      coll::alltoall(comm, send, got_p, c.b,
                     hier_alltoall(c.g, ExecutionPath::kPipelined, round));

      err = coll::check_index_recv(want, c.n, rank, c.b, seed);
      if (err.empty() && got_c != want) {
        err = "compiled hierarchical payload diverges from the flat oracle";
      }
      if (err.empty() && got_p != want) {
        err = "pipelined hierarchical payload diverges from the flat oracle";
      }
    });
    for (const std::string& e : errors) ASSERT_EQ(e, "");
  }
}

TEST(Hierarchical, AllgatherMatchesFlatOracleBitwise) {
  for (const HierCase& c : sweep_cases()) {
    SCOPED_TRACE(label(c));
    const std::uint64_t seed = 0xC0CA7u ^ static_cast<std::uint64_t>(
                                              c.n * 1000 + c.g * 10 + c.b);
    std::vector<std::string> errors(static_cast<std::size_t>(c.n));
    mps::run_spmd(c.n, c.k, [&](mps::Communicator& comm) {
      const std::int64_t rank = comm.rank();
      auto& err = errors[static_cast<std::size_t>(rank)];
      std::vector<std::byte> send(static_cast<std::size_t>(c.b));
      const std::size_t bytes = static_cast<std::size_t>(c.n * c.b);
      std::vector<std::byte> want(bytes, std::byte{0xEE});
      std::vector<std::byte> got_c(bytes, std::byte{0xEE});
      std::vector<std::byte> got_p(bytes, std::byte{0xEE});
      coll::fill_concat_send(send, rank, c.b, seed);

      AllgatherOptions ref;
      ref.path = ExecutionPath::kReference;
      ref.hier = HierMode::kOff;
      int round = coll::allgather(comm, send, want, c.b, ref);
      round = coll::allgather(comm, send, got_c, c.b,
                              hier_allgather(c.g, ExecutionPath::kCompiled,
                                             round));
      coll::allgather(comm, send, got_p, c.b,
                      hier_allgather(c.g, ExecutionPath::kPipelined, round));

      err = coll::check_concat_recv(want, c.n, c.b, seed);
      if (err.empty() && got_c != want) {
        err = "compiled hierarchical payload diverges from the flat oracle";
      }
      if (err.empty() && got_p != want) {
        err = "pipelined hierarchical payload diverges from the flat oracle";
      }
    });
    for (const std::string& e : errors) ASSERT_EQ(e, "");
  }
}

/// Deterministic i32 contribution of (src, element): small integers, so
/// every combine order sums exactly and results compare bitwise.
std::int32_t reduce_value(std::int64_t src, std::int64_t idx) {
  SplitMix64 rng(0x5EEDull + static_cast<std::uint64_t>(src) * 0x9E3779B9ull +
                 static_cast<std::uint64_t>(idx));
  return static_cast<std::int32_t>(static_cast<std::int64_t>(
                                       rng.next() % 1001) - 500);
}

TEST(Hierarchical, ReduceScatterMatchesFlatOracleBitwise) {
  for (const HierCase& c : sweep_cases()) {
    SCOPED_TRACE(label(c));
    const std::int64_t elems = c.b;  // i32 elements per block
    const std::int64_t b = elems * 4;
    const ReduceOp op = ReduceOp::sum(ReduceElem::kI32);
    std::vector<std::string> errors(static_cast<std::size_t>(c.n));
    mps::run_spmd(c.n, c.k, [&](mps::Communicator& comm) {
      const std::int64_t rank = comm.rank();
      auto& err = errors[static_cast<std::size_t>(rank)];
      std::vector<std::byte> send(static_cast<std::size_t>(c.n * b));
      for (std::int64_t i = 0; i < c.n * elems; ++i) {
        const std::int32_t v = reduce_value(rank, i);
        std::memcpy(send.data() + i * 4, &v, 4);
      }
      // Independent rank-order expectation for this rank's block.
      std::vector<std::byte> want(static_cast<std::size_t>(b));
      for (std::int64_t e = 0; e < elems; ++e) {
        std::int32_t acc = 0;
        for (std::int64_t src = 0; src < c.n; ++src) {
          acc += reduce_value(src, rank * elems + e);
        }
        std::memcpy(want.data() + e * 4, &acc, 4);
      }

      std::vector<std::byte> got_f(static_cast<std::size_t>(b),
                                   std::byte{0xEE});
      std::vector<std::byte> got_c(static_cast<std::size_t>(b),
                                   std::byte{0xEE});
      std::vector<std::byte> got_p(static_cast<std::size_t>(b),
                                   std::byte{0xEE});
      ReduceScatterOptions ref;
      ref.path = ExecutionPath::kReference;
      ref.hier = HierMode::kOff;
      int round = coll::reduce_scatter(comm, send, got_f, b, op, ref);
      round = coll::reduce_scatter(
          comm, send, got_c, b, op,
          hier_reduce_scatter(c.g, ExecutionPath::kCompiled, round));
      coll::reduce_scatter(
          comm, send, got_p, b, op,
          hier_reduce_scatter(c.g, ExecutionPath::kPipelined, round));

      if (got_f != want) err = "flat oracle diverges from expectation";
      if (err.empty() && got_c != want) {
        err = "compiled hierarchical payload diverges from the flat oracle";
      }
      if (err.empty() && got_p != want) {
        err = "pipelined hierarchical payload diverges from the flat oracle";
      }
    });
    for (const std::string& e : errors) ASSERT_EQ(e, "");
  }
}

// ---------------------------------------------------------------------------
// Trace agreement: both plan executors must put the identical message
// pattern on the wire (same rounds, same C1/C2) for one hierarchical
// composite, and the facade's returned round count must equal the
// composite's uniform round_count().

mps::RunResult run_hier_chain(const HierCase& c, ExecutionPath path,
                              std::vector<int>* rounds_out) {
  const std::uint64_t seed = 0x7AACEull + static_cast<std::uint64_t>(c.n);
  return mps::run_spmd(c.n, c.k, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> isend(static_cast<std::size_t>(c.n * c.b));
    std::vector<std::byte> irecv(isend.size(), std::byte{0xEE});
    coll::fill_index_send(isend, c.n, rank, c.b, seed);
    int round = coll::alltoall(comm, isend, irecv, c.b,
                               hier_alltoall(c.g, path, 0));

    std::vector<std::byte> csend(static_cast<std::size_t>(c.b));
    std::vector<std::byte> crecv(static_cast<std::size_t>(c.n * c.b),
                                 std::byte{0xEE});
    coll::fill_concat_send(csend, rank, c.b, seed + 1);
    round = coll::allgather(comm, csend, crecv, c.b,
                            hier_allgather(c.g, path, round));

    const std::int64_t rb = 8;
    const ReduceOp op = ReduceOp::sum(ReduceElem::kI64);
    std::vector<std::byte> rsend(static_cast<std::size_t>(c.n * rb));
    for (std::int64_t j = 0; j < c.n; ++j) {
      const std::int64_t v = rank * 100 + j;
      std::memcpy(rsend.data() + j * rb, &v, 8);
    }
    std::vector<std::byte> rrecv(static_cast<std::size_t>(rb),
                                 std::byte{0xEE});
    round = coll::reduce_scatter(comm, rsend, rrecv, rb, op,
                                 hier_reduce_scatter(c.g, path, round));
    if (rounds_out != nullptr) {
      (*rounds_out)[static_cast<std::size_t>(rank)] = round;
    }
  });
}

TEST(Hierarchical, ExecutorsAgreeOnTheWireTrace) {
  const HierCase cases[] = {
      {4, 2, 2, 8}, {6, 4, 2, 5}, {9, 3, 1, 3}, {8, 8, 2, 4}, {7, 1, 2, 6},
  };
  for (const HierCase& c : cases) {
    SCOPED_TRACE(label(c));
    std::vector<int> rounds_c(static_cast<std::size_t>(c.n), -1);
    std::vector<int> rounds_p(static_cast<std::size_t>(c.n), -2);
    const mps::RunResult rc =
        run_hier_chain(c, ExecutionPath::kCompiled, &rounds_c);
    const mps::RunResult rp =
        run_hier_chain(c, ExecutionPath::kPipelined, &rounds_p);
    ASSERT_TRUE(rc.trace->to_schedule() == rp.trace->to_schedule());
    ASSERT_EQ(rc.trace->metrics(), rp.trace->metrics());
    ASSERT_EQ(rounds_c, rounds_p);
    // Every rank returns the same fabric-wide next round: the sum of the
    // three composites' uniform round counts, lowered for the same shapes
    // the facade resolves (the tuner names the inter radix even when the
    // group size is forced).
    const model::TwoLevelModel machine =
        model::uniform_two_level(model::ibm_sp1());
    const model::HierChoice pi = model::pick_index_plan(
        c.n, c.k, c.b, machine, model::RadixSet::kAll, c.g);
    const model::HierChoice pc = model::pick_concat_plan(
        c.n, c.k, c.b, machine, model::ConcatLastRound::kAuto, c.g);
    const model::HierChoice pr = model::pick_reduce_plan(
        c.n, c.k, 8, machine, model::RadixSet::kAll, c.g);
    coll::HierShape si;
    si.group = pi.group;
    si.inter_radix = pi.inter_radix;
    coll::HierShape sc;
    sc.group = pc.group;
    sc.inter_radix = pc.inter_radix;
    coll::HierShape sr;
    sr.group = pr.group;
    sr.inter_radix = pr.inter_radix;
    const int want_rounds =
        coll::CompositePlan::lower_index_hier(c.n, c.k, 0, c.b, si)
            .round_count() +
        coll::CompositePlan::lower_concat_hier(c.n, c.k, 0, c.b, sc)
            .round_count() +
        coll::CompositePlan::lower_reduce_hier(
            c.n, c.k, 0, 8, ReduceOp::sum(ReduceElem::kI64), sr)
            .round_count();
    for (const int r : rounds_c) ASSERT_EQ(r, want_rounds);
  }
}

TEST(Hierarchical, ReferencePathIgnoresTheHierKnob) {
  // kReference is the oracle; the hier knob must never reroute it.
  const HierCase c{6, 2, 2, 4};
  const auto run_ref = [&](HierMode hier) {
    return mps::run_spmd(c.n, c.k, [&](mps::Communicator& comm) {
      std::vector<std::byte> send(static_cast<std::size_t>(c.n * c.b));
      std::vector<std::byte> recv(send.size(), std::byte{0xEE});
      coll::fill_index_send(send, c.n, comm.rank(), c.b, 99);
      AlltoallOptions o;
      o.path = ExecutionPath::kReference;
      o.hier = hier;
      o.hier_group = c.g;
      coll::alltoall(comm, send, recv, c.b, o);
    });
  };
  const mps::RunResult plain = run_ref(HierMode::kOff);
  const mps::RunResult forced = run_ref(HierMode::kOn);
  ASSERT_TRUE(plain.trace->to_schedule() == forced.trace->to_schedule());
}

// ---------------------------------------------------------------------------
// Tuner extremes: on a machine whose inter-group links are orders of
// magnitude slower than intra-group (shm vs socket), the leader model wins;
// on a uniform machine the extra gather/scatter stages can only lose.

TEST(Hierarchical, TunerPicksHierOnSkewedMachines) {
  const model::TwoLevelModel skewed = model::shm_socket_two_level();
  const std::int64_t n = 16;
  const int k = 1;
  const std::int64_t b = 8;

  const model::HierChoice ci = model::pick_index_plan(n, k, b, skewed);
  EXPECT_TRUE(ci.hier);
  EXPECT_GE(ci.group, 2);
  EXPECT_LE(ci.group, n);
  EXPECT_LT(ci.hier_us, ci.flat_us);
  EXPECT_DOUBLE_EQ(ci.hier_us, model::predict_hier_us(skewed, ci.hier_cost));

  const model::HierChoice cc = model::pick_concat_plan(n, k, b, skewed);
  EXPECT_TRUE(cc.hier);
  EXPECT_LT(cc.hier_us, cc.flat_us);
  EXPECT_DOUBLE_EQ(cc.hier_us, model::predict_hier_us(skewed, cc.hier_cost));

  const model::HierChoice cr = model::pick_reduce_plan(n, k, b, skewed);
  EXPECT_TRUE(cr.hier);
  EXPECT_LT(cr.hier_us, cr.flat_us);
  EXPECT_DOUBLE_EQ(cr.hier_us,
                   model::predict_hier_reduce_us(skewed, cr.hier_cost));
}

TEST(Hierarchical, TunerPrefersFlatOnUniformMachines) {
  const model::TwoLevelModel uniform =
      model::uniform_two_level(model::ibm_sp1());
  for (const std::int64_t b : {1ll, 64ll, 4096ll}) {
    SCOPED_TRACE("b=" + std::to_string(b));
    const model::HierChoice ci = model::pick_index_plan(16, 2, b, uniform);
    EXPECT_FALSE(ci.hier);
    EXPECT_LE(ci.flat_us, ci.hier_us);
    // The best hierarchical shape is still named, so a forced-on knob can
    // run it.
    EXPECT_GE(ci.group, 2);
    EXPECT_GE(ci.inter_radix, 2);
    EXPECT_FALSE(model::pick_concat_plan(16, 2, b, uniform).hier);
    EXPECT_FALSE(model::pick_reduce_plan(16, 2, b, uniform).hier);
  }
}

TEST(Hierarchical, CachedPicksMatchUncached) {
  const model::TwoLevelModel machines[] = {
      model::shm_socket_two_level(),
      model::uniform_two_level(model::ibm_sp1())};
  for (const auto& m : machines) {
    for (const std::int64_t g : {0ll, 3ll}) {
      const model::HierChoice a = model::pick_index_plan(12, 2, 16, m,
                                                         model::RadixSet::kAll,
                                                         g);
      const model::HierChoice b = model::pick_index_plan_cached(
          12, 2, 16, m, model::RadixSet::kAll, g);
      EXPECT_EQ(a.hier, b.hier);
      EXPECT_EQ(a.group, b.group);
      EXPECT_EQ(a.inter_radix, b.inter_radix);
      EXPECT_EQ(a.flat_radix, b.flat_radix);
      EXPECT_DOUBLE_EQ(a.flat_us, b.flat_us);
      EXPECT_DOUBLE_EQ(a.hier_us, b.hier_us);
    }
  }
}

TEST(Hierarchical, AutoModeFollowsTheTunerAtBothExtremes) {
  // kAuto under a uniform machine must execute the identical flat wire
  // trace as kOff; under the skewed machine it must go hierarchical (the
  // same trace a forced kOn run produces).
  const HierCase c{8, 0, 2, 4};
  const auto run_auto = [&](HierMode hier, const model::TwoLevelModel& m) {
    return mps::run_spmd(c.n, c.k, [&](mps::Communicator& comm) {
      std::vector<std::byte> send(static_cast<std::size_t>(c.n * c.b));
      std::vector<std::byte> recv(send.size(), std::byte{0xEE});
      coll::fill_index_send(send, c.n, comm.rank(), c.b, 7);
      AlltoallOptions o;
      o.path = ExecutionPath::kCompiled;
      o.hier = hier;
      o.hier_machine = m;
      coll::alltoall(comm, send, recv, c.b, o);
    });
  };
  const model::TwoLevelModel uniform =
      model::uniform_two_level(model::ibm_sp1());
  const model::TwoLevelModel skewed = model::shm_socket_two_level();

  const mps::RunResult auto_uniform = run_auto(HierMode::kAuto, uniform);
  const mps::RunResult off_uniform = run_auto(HierMode::kOff, uniform);
  ASSERT_TRUE(auto_uniform.trace->to_schedule() ==
              off_uniform.trace->to_schedule());

  const mps::RunResult auto_skewed = run_auto(HierMode::kAuto, skewed);
  const mps::RunResult on_skewed = run_auto(HierMode::kOn, skewed);
  ASSERT_TRUE(auto_skewed.trace->to_schedule() ==
              on_skewed.trace->to_schedule());
  // And the two extremes genuinely differ.
  ASSERT_FALSE(auto_skewed.trace->to_schedule() ==
               auto_uniform.trace->to_schedule());
}

// ---------------------------------------------------------------------------
// Env knobs end-to-end: BRUCK_HIER=on with BRUCK_HIER_GROUP_SIZE must make
// the plain facade execute the same wire trace as the option-forced run.

TEST(Hierarchical, EnvKnobsDriveThePlainFacade) {
  const char* prior_mode_raw = std::getenv("BRUCK_HIER");
  const std::string prior_mode = prior_mode_raw ? prior_mode_raw : "";
  const char* prior_group_raw = std::getenv("BRUCK_HIER_GROUP_SIZE");
  const std::string prior_group = prior_group_raw ? prior_group_raw : "";

  const HierCase c{6, 2, 2, 4};
  const auto run_plain = [&] {
    return mps::run_spmd(c.n, c.k, [&](mps::Communicator& comm) {
      std::vector<std::byte> send(static_cast<std::size_t>(c.n * c.b));
      std::vector<std::byte> recv(send.size(), std::byte{0xEE});
      coll::fill_index_send(send, c.n, comm.rank(), c.b, 11);
      AlltoallOptions o;
      o.path = ExecutionPath::kCompiled;
      coll::alltoall(comm, send, recv, c.b, o);
    });
  };

  ASSERT_EQ(setenv("BRUCK_HIER", "on", 1), 0);
  ASSERT_EQ(setenv("BRUCK_HIER_GROUP_SIZE", "2", 1), 0);
  const mps::RunResult env_run = run_plain();
  ASSERT_EQ(unsetenv("BRUCK_HIER"), 0);
  ASSERT_EQ(unsetenv("BRUCK_HIER_GROUP_SIZE"), 0);
  const mps::RunResult flat_run = run_plain();

  const mps::RunResult forced_run = mps::run_spmd(
      c.n, c.k, [&](mps::Communicator& comm) {
        std::vector<std::byte> send(static_cast<std::size_t>(c.n * c.b));
        std::vector<std::byte> recv(send.size(), std::byte{0xEE});
        coll::fill_index_send(send, c.n, comm.rank(), c.b, 11);
        coll::alltoall(comm, send, recv, c.b,
                       hier_alltoall(c.g, ExecutionPath::kCompiled, 0));
      });

  ASSERT_TRUE(env_run.trace->to_schedule() == forced_run.trace->to_schedule());
  ASSERT_FALSE(env_run.trace->to_schedule() == flat_run.trace->to_schedule());

  if (prior_mode_raw != nullptr) {
    ASSERT_EQ(setenv("BRUCK_HIER", prior_mode.c_str(), 1), 0);
  }
  if (prior_group_raw != nullptr) {
    ASSERT_EQ(setenv("BRUCK_HIER_GROUP_SIZE", prior_group.c_str(), 1), 0);
  }
}

// ---------------------------------------------------------------------------
// Composite anatomy: the stage list a lowering produces and the describe()
// rendering behind `bruckcl_plan compile --hier`.

TEST(Hierarchical, CompositeAnatomyDescribesEveryStage) {
  coll::HierShape shape;
  shape.group = 4;
  shape.inter_radix = 2;
  const coll::CompositePlan cp =
      coll::CompositePlan::lower_index_hier(8, 2, /*rank=*/0, 4, shape);
  ASSERT_EQ(cp.stages().size(), 3u);
  EXPECT_GT(cp.round_count(), 0);
  int stride_sum = 0;
  for (const auto& st : cp.stages()) stride_sum += st.round_stride;
  EXPECT_EQ(stride_sum, cp.round_count());

  const std::string d = cp.describe();
  EXPECT_NE(d.find("stage 0"), std::string::npos) << d;
  EXPECT_NE(d.find("stage 2"), std::string::npos) << d;
  EXPECT_NE(d.find("intra gather"), std::string::npos) << d;
  EXPECT_NE(d.find("inter index"), std::string::npos) << d;
  EXPECT_NE(d.find("intra scatter"), std::string::npos) << d;
}

}  // namespace
}  // namespace bruck
