// Broadcast / gather / scatter: content correctness over (n, k, root, b)
// sweeps, the trace == built-schedule == closed-form cross-check, and the
// Proposition 2.1 optimality of the circulant broadcast.
#include <gtest/gtest.h>

#include <vector>

#include "coll/api.hpp"
#include "coll/bcast.hpp"
#include "coll/gather_scatter.hpp"
#include "model/costs.hpp"
#include "model/lower_bounds.hpp"
#include "mps/runtime.hpp"
#include "sched/builders_primitives.hpp"
#include "util/rng.hpp"

namespace bruck {
namespace {

// ---------------------------------------------------------------------------
// Broadcast.

struct BcastCase {
  std::int64_t n;
  int k;
  std::int64_t root;
  std::int64_t bytes;
  bool circulant;
};

std::string bcast_name(const BcastCase& c) {
  return std::string(c.circulant ? "circ" : "binom") + "_n" +
         std::to_string(c.n) + "_k" + std::to_string(c.k) + "_root" +
         std::to_string(c.root) + "_b" + std::to_string(c.bytes);
}

class BcastSweep : public ::testing::TestWithParam<BcastCase> {};

TEST_P(BcastSweep, PayloadReachesEveryRankAndTraceMatches) {
  const auto [n, k, root, bytes, circulant] = GetParam();
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  mps::RunResult rr = mps::run_spmd(n, k, [&, r = root](mps::Communicator& comm) {
    std::vector<std::byte> data(static_cast<std::size_t>(bytes));
    if (comm.rank() == r) fill_payload(data, 47, r, 0);
    if (circulant) {
      coll::bcast_circulant(comm, r, data, {});
    } else {
      coll::bcast_binomial(comm, r, data, {});
    }
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data[i] != payload_byte(47, r, 0, i)) {
        errors[static_cast<std::size_t>(comm.rank())] = "payload corrupted";
        return;
      }
    }
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");
  sched::Schedule executed = rr.trace->to_schedule();
  sched::Schedule built =
      circulant ? sched::build_bcast_circulant(n, k, root, bytes)
                : sched::build_bcast_binomial(n, root, bytes);
  built.normalize();
  EXPECT_TRUE(executed == built) << bcast_name(GetParam());
  const model::CostMetrics closed =
      circulant ? model::bcast_circulant_cost(n, k, bytes)
                : model::bcast_binomial_cost(n, bytes);
  EXPECT_EQ(executed.metrics(), closed) << bcast_name(GetParam());
}

std::vector<BcastCase> bcast_cases() {
  std::vector<BcastCase> cases;
  for (std::int64_t n : {1, 2, 3, 5, 8, 9, 13, 16, 26, 27, 28, 32}) {
    for (int k : {1, 2, 3}) {
      for (std::int64_t root : {std::int64_t{0}, n / 2, n - 1}) {
        if (root != 0 && (root == n / 2) == (root == n - 1)) continue;
        cases.push_back(BcastCase{n, k, root, 12, true});
      }
    }
    cases.push_back(BcastCase{n, 1, n / 2, 12, false});
  }
  // Dedup roots that coincide for tiny n.
  std::vector<BcastCase> unique;
  for (const BcastCase& c : cases) {
    bool seen = false;
    for (const BcastCase& u : unique) {
      if (bcast_name(u) == bcast_name(c)) seen = true;
    }
    if (!seen) unique.push_back(c);
  }
  return unique;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BcastSweep, ::testing::ValuesIn(bcast_cases()),
                         [](const auto& pinfo) { return bcast_name(pinfo.param); });

TEST(Bcast, CirculantMeetsProposition21Everywhere) {
  // C1 = ⌈log_{k+1} n⌉ exactly: the broadcast round bound is achieved for
  // every n, not just powers.
  for (std::int64_t n = 1; n <= 80; ++n) {
    for (int k = 1; k <= 5; ++k) {
      const model::CostMetrics m = model::bcast_circulant_cost(n, k, 4);
      EXPECT_EQ(m.c1, model::concat_c1_lower_bound(n, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Bcast, ApiDispatch) {
  for (const auto alg : {coll::BcastAlgorithm::kCirculant,
                         coll::BcastAlgorithm::kBinomial,
                         coll::BcastAlgorithm::kAuto}) {
    std::vector<int> bad(7, 0);
    mps::run_spmd(7, 2, [&](mps::Communicator& comm) {
      std::vector<std::byte> data(9);
      if (comm.rank() == 3) fill_payload(data, 5, 3, 0);
      coll::BcastApiOptions options;
      options.algorithm = alg;
      // Binomial ignores extra ports; both must deliver.
      coll::broadcast(comm, 3, data, options);
      for (std::size_t i = 0; i < data.size(); ++i) {
        if (data[i] != payload_byte(5, 3, 0, i)) {
          bad[static_cast<std::size_t>(comm.rank())] = 1;
        }
      }
    });
    for (int b : bad) EXPECT_EQ(b, 0);
  }
}

// ---------------------------------------------------------------------------
// Gather / scatter.

struct RootedCase {
  std::int64_t n;
  std::int64_t root;
  std::int64_t b;
};

std::string rooted_name(const RootedCase& c) {
  return "n" + std::to_string(c.n) + "_root" + std::to_string(c.root) + "_b" +
         std::to_string(c.b);
}

class GatherSweep : public ::testing::TestWithParam<RootedCase> {};

TEST_P(GatherSweep, RootCollectsEveryBlockAndTraceMatches) {
  const auto [n, root, b] = GetParam();
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  mps::RunResult rr = mps::run_spmd(n, 1, [&, rt = root](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> send(static_cast<std::size_t>(b));
    std::vector<std::byte> recv(static_cast<std::size_t>(n * b));
    fill_payload(send, 61, rank, 0);
    coll::gather_binomial(comm, rt, send, recv, b, {});
    if (rank == rt) {
      for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t off = 0; off < b; ++off) {
          if (recv[static_cast<std::size_t>(i * b + off)] !=
              payload_byte(61, i, 0, static_cast<std::size_t>(off))) {
            errors[static_cast<std::size_t>(rank)] =
                "block " + std::to_string(i) + " wrong at root";
            return;
          }
        }
      }
    }
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");
  if (b > 0 && n > 1) {
    sched::Schedule executed = rr.trace->to_schedule();
    sched::Schedule built = sched::build_gather_binomial(n, root, b);
    built.normalize();
    EXPECT_TRUE(executed == built) << rooted_name(GetParam());
    EXPECT_EQ(executed.metrics(), model::gather_binomial_cost(n, b));
  }
}

class ScatterSweep : public ::testing::TestWithParam<RootedCase> {};

TEST_P(ScatterSweep, EveryRankGetsItsBlockAndTraceMatches) {
  const auto [n, root, b] = GetParam();
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  mps::RunResult rr = mps::run_spmd(n, 1, [&, rt = root](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> send(static_cast<std::size_t>(n * b));
    std::vector<std::byte> recv(static_cast<std::size_t>(b));
    if (rank == rt) {
      for (std::int64_t i = 0; i < n; ++i) {
        fill_payload(std::span<std::byte>(send).subspan(
                         static_cast<std::size_t>(i * b),
                         static_cast<std::size_t>(b)),
                     71, i, 0);
      }
    }
    coll::scatter_binomial(comm, rt, send, recv, b, {});
    for (std::int64_t off = 0; off < b; ++off) {
      if (recv[static_cast<std::size_t>(off)] !=
          payload_byte(71, rank, 0, static_cast<std::size_t>(off))) {
        errors[static_cast<std::size_t>(rank)] = "wrong block delivered";
        return;
      }
    }
  });
  for (const std::string& e : errors) ASSERT_EQ(e, "");
  if (b > 0 && n > 1) {
    sched::Schedule executed = rr.trace->to_schedule();
    sched::Schedule built = sched::build_scatter_binomial(n, root, b);
    built.normalize();
    EXPECT_TRUE(executed == built) << rooted_name(GetParam());
    EXPECT_EQ(executed.metrics(), model::scatter_binomial_cost(n, b));
  }
}

std::vector<RootedCase> rooted_cases() {
  std::vector<RootedCase> cases;
  for (std::int64_t n : {1, 2, 3, 5, 8, 11, 16, 21, 32}) {
    cases.push_back(RootedCase{n, 0, 5});
    if (n > 2) cases.push_back(RootedCase{n, n - 1, 5});
  }
  cases.push_back(RootedCase{9, 4, 0});
  cases.push_back(RootedCase{9, 4, 1});
  cases.push_back(RootedCase{9, 4, 33});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GatherSweep,
                         ::testing::ValuesIn(rooted_cases()),
                         [](const auto& pinfo) { return rooted_name(pinfo.param); });
INSTANTIATE_TEST_SUITE_P(Sweep, ScatterSweep,
                         ::testing::ValuesIn(rooted_cases()),
                         [](const auto& pinfo) { return rooted_name(pinfo.param); });

TEST(GatherScatter, RoundTripThroughApi) {
  // scatter(gather(x)) == x at every rank, composing through the facade
  // with threaded rounds.
  const std::int64_t n = 12;
  const std::int64_t b = 7;
  std::vector<int> bad(static_cast<std::size_t>(n), 0);
  mps::run_spmd(n, 1, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> mine(static_cast<std::size_t>(b));
    fill_payload(mine, 83, rank, 0);
    std::vector<std::byte> at_root(static_cast<std::size_t>(n * b));
    int round = coll::gather(comm, 5, mine, at_root, b);
    std::vector<std::byte> back(static_cast<std::size_t>(b));
    coll::scatter(comm, 5, at_root, back, b, coll::RootedOptions{round});
    if (back != mine) bad[static_cast<std::size_t>(rank)] = 1;
  });
  for (int x : bad) EXPECT_EQ(x, 0);
}

TEST(GatherScatter, CostsAreMirrorImages) {
  for (std::int64_t n = 1; n <= 64; ++n) {
    const model::CostMetrics g = model::gather_binomial_cost(n, 6);
    const model::CostMetrics s = model::scatter_binomial_cost(n, 6);
    EXPECT_EQ(g.c1, s.c1);
    EXPECT_EQ(g.c2, s.c2);
    EXPECT_EQ(g.total_bytes, s.total_bytes);
    EXPECT_EQ(g.max_rank_sent, s.max_rank_recv);
    EXPECT_EQ(g.max_rank_recv, s.max_rank_sent);
  }
}

TEST(GatherScatter, PowerOfTwoVolumeIsBnMinusOne) {
  for (std::int64_t n : {2, 4, 8, 16, 32, 64}) {
    EXPECT_EQ(model::gather_binomial_cost(n, 3).c2, 3 * (n - 1));
  }
}

}  // namespace
}  // namespace bruck
