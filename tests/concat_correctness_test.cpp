// End-to-end content correctness of the concatenation (allgather)
// algorithms, across n × ports × block-size × last-round-strategy grids.
#include <gtest/gtest.h>

#include "coll/concat_bruck.hpp"
#include "coll/concat_folklore.hpp"
#include "coll/concat_ring.hpp"
#include "model/costs.hpp"
#include "test_util.hpp"
#include "util/assert.hpp"

namespace bruck {
namespace {

using model::ConcatLastRound;
using testutil::run_concat;

struct Case {
  std::int64_t n;
  int k;
  std::int64_t b;
  ConcatLastRound strategy;
};

std::string strategy_name(ConcatLastRound s) {
  switch (s) {
    case ConcatLastRound::kByteSplit: return "bytesplit";
    case ConcatLastRound::kColumnGranular: return "colgran";
    case ConcatLastRound::kTwoRound: return "tworound";
    case ConcatLastRound::kAuto: return "auto";
  }
  return "?";
}

std::string case_name(const Case& c) {
  return "n" + std::to_string(c.n) + "_k" + std::to_string(c.k) + "_b" +
         std::to_string(c.b) + "_" + strategy_name(c.strategy);
}

class ConcatBruckSweep : public ::testing::TestWithParam<Case> {};

TEST_P(ConcatBruckSweep, EveryRankEndsWithTheFullConcatenation) {
  const auto [n, k, b, strategy] = GetParam();
  const testutil::CollRun run = run_concat(
      n, k, b,
      [&, strat = strategy](mps::Communicator& comm,
                            std::span<const std::byte> send,
                            std::span<std::byte> recv) {
        return coll::concat_bruck(comm, send, recv, b,
                                  coll::ConcatBruckOptions{strat, 0});
      });
  EXPECT_EQ(run.error, "") << case_name(GetParam());
}

std::vector<Case> concat_cases() {
  std::vector<Case> cases;
  for (std::int64_t n : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 15, 16, 17,
                         20, 25, 26, 27, 28, 31, 32, 33}) {
    for (int k : {1, 2, 3, 4}) {
      for (ConcatLastRound strategy :
           {ConcatLastRound::kAuto, ConcatLastRound::kColumnGranular,
            ConcatLastRound::kTwoRound}) {
        cases.push_back(Case{n, k, 3, strategy});
      }
      // Explicit byte-split wherever it is feasible.
      if (model::concat_byte_split_feasible(n, k, 3)) {
        cases.push_back(Case{n, k, 3, ConcatLastRound::kByteSplit});
      }
    }
  }
  // Block-size edges, including b larger than anything the partition splits.
  for (std::int64_t b : {0, 1, 2, 5, 17, 64}) {
    cases.push_back(Case{10, 2, b, ConcatLastRound::kAuto});
    cases.push_back(Case{7, 3, b, ConcatLastRound::kTwoRound});
    cases.push_back(Case{5, 4, b, ConcatLastRound::kColumnGranular});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConcatBruckSweep,
                         ::testing::ValuesIn(concat_cases()),
                         [](const auto& pinfo) { return case_name(pinfo.param); });

// The paper's non-optimal range, executed: every strategy that claims
// feasibility must still deliver correct contents there.
TEST(ConcatBruck, NonoptimalRangeContentsCorrect) {
  int cases = 0;
  for (std::int64_t n = 2; n <= 40; ++n) {
    for (int k = 3; k <= 4; ++k) {
      const std::int64_t b = 3;
      if (!model::concat_paper_nonoptimal_range(n, k, b)) continue;
      ++cases;
      for (ConcatLastRound strategy :
           {ConcatLastRound::kAuto, ConcatLastRound::kColumnGranular,
            ConcatLastRound::kTwoRound}) {
        const testutil::CollRun run = run_concat(
            n, k, b,
            [&](mps::Communicator& comm, std::span<const std::byte> send,
                std::span<std::byte> recv) {
              return coll::concat_bruck(comm, send, recv, b,
                                        coll::ConcatBruckOptions{strategy, 0});
            });
        EXPECT_EQ(run.error, "")
            << "n=" << n << " k=" << k << " " << strategy_name(strategy);
      }
    }
  }
  EXPECT_GT(cases, 3);
}

TEST(ConcatBruck, ByteSplitStrategyThrowsWhereInfeasible) {
  // n = 3, k = 3, b = 3 is infeasible for the byte-split partition.
  ASSERT_FALSE(model::concat_byte_split_feasible(3, 3, 3));
  EXPECT_THROW(
      run_concat(3, 3, 3,
                 [&](mps::Communicator& comm, std::span<const std::byte> send,
                     std::span<std::byte> recv) {
                   return coll::concat_bruck(
                       comm, send, recv, 3,
                       coll::ConcatBruckOptions{ConcatLastRound::kByteSplit, 0});
                 }),
      ContractViolation);
}

struct SimpleCase {
  std::int64_t n;
  std::int64_t b;
};

class ConcatFolkloreSweep : public ::testing::TestWithParam<SimpleCase> {};

TEST_P(ConcatFolkloreSweep, EveryRankEndsWithTheFullConcatenation) {
  const auto [n, b] = GetParam();
  const testutil::CollRun run = run_concat(
      n, 1, b,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::concat_folklore(comm, send, recv, b, {});
      });
  EXPECT_EQ(run.error, "") << "n=" << n << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConcatFolkloreSweep,
    ::testing::Values(SimpleCase{1, 4}, SimpleCase{2, 4}, SimpleCase{3, 4},
                      SimpleCase{5, 4}, SimpleCase{8, 4}, SimpleCase{11, 4},
                      SimpleCase{16, 4}, SimpleCase{21, 4}, SimpleCase{32, 4},
                      SimpleCase{9, 0}, SimpleCase{9, 1}, SimpleCase{9, 33}),
    [](const auto& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_b" +
             std::to_string(pinfo.param.b);
    });

class ConcatRingSweep : public ::testing::TestWithParam<SimpleCase> {};

TEST_P(ConcatRingSweep, EveryRankEndsWithTheFullConcatenation) {
  const auto [n, b] = GetParam();
  const testutil::CollRun run = run_concat(
      n, 1, b,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        return coll::concat_ring(comm, send, recv, b, {});
      });
  EXPECT_EQ(run.error, "") << "n=" << n << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConcatRingSweep,
    ::testing::Values(SimpleCase{1, 4}, SimpleCase{2, 4}, SimpleCase{3, 4},
                      SimpleCase{7, 4}, SimpleCase{16, 4}, SimpleCase{25, 4},
                      SimpleCase{6, 0}, SimpleCase{6, 1}, SimpleCase{6, 19}),
    [](const auto& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_b" +
             std::to_string(pinfo.param.b);
    });

TEST(ConcatProperty, AllAlgorithmsProduceIdenticalOutput) {
  for (std::int64_t n : {5, 9, 16}) {
    const std::int64_t b = 7;
    std::vector<int> mismatches(static_cast<std::size_t>(n), 0);
    mps::run_spmd(n, 1, [&](mps::Communicator& comm) {
      const std::int64_t rank = comm.rank();
      std::vector<std::byte> send(static_cast<std::size_t>(b));
      coll::fill_concat_send(send, rank, b, 31);
      std::vector<std::byte> a(static_cast<std::size_t>(n * b));
      std::vector<std::byte> c(a.size());
      std::vector<std::byte> d(a.size());
      int next = coll::concat_bruck(comm, send, a, b, {});
      next = coll::concat_folklore(comm, send, c, b,
                                   coll::ConcatFolkloreOptions{next});
      coll::concat_ring(comm, send, d, b, coll::ConcatRingOptions{next});
      if (a != c || a != d) mismatches[static_cast<std::size_t>(rank)] = 1;
    });
    for (int m : mismatches) EXPECT_EQ(m, 0) << "n=" << n;
  }
}

}  // namespace
}  // namespace bruck
