// The compiled-schedule execution engine: Plan lowering, the PlanCache, and
// the facade's compiled hot path.
//
// The correctness story is three-way: (1) a plan-executed collective must
// deliver exactly the payloads the reference (inline) implementation does,
// (2) its executed trace must equal the independently *built* schedule from
// sched/, and (3) the PlanCache must prove that repeated same-geometry calls
// do zero re-planning work (hits only, entry count flat).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "coll/api.hpp"
#include "coll/plan.hpp"
#include "coll/plan_cache.hpp"
#include "model/costs.hpp"
#include "model/tuner.hpp"
#include "sched/builders_concat.hpp"
#include "sched/builders_index.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace bruck {
namespace {

using coll::AllgatherOptions;
using coll::AlltoallOptions;
using coll::ConcatAlgorithm;
using coll::ExecutionPath;
using coll::IndexAlgorithm;
using coll::Plan;
using coll::PlanCache;
using coll::PlanCacheStats;
using coll::PlanKey;

// ---------------------------------------------------------------------------
// PlanCache mechanics on a private instance (the global one is exercised
// through the facade further down).

TEST(PlanCache, MissThenHitOnSameKey) {
  PlanCache cache;
  const PlanKey key = coll::index_plan_key(IndexAlgorithm::kBruck, 8, 2, 2);
  const PlanCache::Lookup first = cache.get_or_lower(key);
  EXPECT_FALSE(first.cache_hit);
  const PlanCache::Lookup second = cache.get_or_lower(key);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.plan.get(), second.plan.get());  // shared, not re-lowered
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCache, GeometryChangesMiss) {
  PlanCache cache;
  (void)cache.get_or_lower(coll::index_plan_key(IndexAlgorithm::kBruck, 8, 2, 2));
  // Each changed coordinate is a different plan.
  (void)cache.get_or_lower(coll::index_plan_key(IndexAlgorithm::kBruck, 9, 2, 2));
  (void)cache.get_or_lower(coll::index_plan_key(IndexAlgorithm::kBruck, 8, 3, 2));
  (void)cache.get_or_lower(coll::index_plan_key(IndexAlgorithm::kBruck, 8, 2, 4));
  (void)cache.get_or_lower(coll::index_plan_key(IndexAlgorithm::kDirect, 8, 2, 0));
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 5u);
  EXPECT_EQ(stats.entries, 5u);
}

TEST(PlanCache, IndexPlansAreBlockSizeIndependent) {
  // The key carries no block size for index collectives: one lowering
  // serves every b (sizes resolve at run time).
  const PlanKey a = coll::index_plan_key(IndexAlgorithm::kBruck, 12, 2, 3);
  const PlanKey b = coll::index_plan_key(IndexAlgorithm::kBruck, 12, 2, 3);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.block_class, 0);
  // Concat plans are keyed per block size (the byte-split partition of
  // Section 4.2 depends on b).
  const PlanKey c = coll::concat_plan_key(
      ConcatAlgorithm::kBruck, 12, 2, model::ConcatLastRound::kColumnGranular, 4);
  const PlanKey d = coll::concat_plan_key(
      ConcatAlgorithm::kBruck, 12, 2, model::ConcatLastRound::kColumnGranular, 8);
  EXPECT_FALSE(c == d);
}

TEST(PlanCache, EvictsLeastRecentlyUsedPastCapacity) {
  PlanCache cache(/*capacity=*/2);
  const PlanKey a = coll::index_plan_key(IndexAlgorithm::kBruck, 4, 1, 2);
  const PlanKey b = coll::index_plan_key(IndexAlgorithm::kBruck, 5, 1, 2);
  const PlanKey c = coll::index_plan_key(IndexAlgorithm::kBruck, 6, 1, 2);
  (void)cache.get_or_lower(a);
  (void)cache.get_or_lower(b);
  (void)cache.get_or_lower(a);  // refresh a: b is now least recently used
  (void)cache.get_or_lower(c);  // evicts b
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_TRUE(cache.get_or_lower(a).cache_hit);
  EXPECT_TRUE(cache.get_or_lower(c).cache_hit);
  EXPECT_FALSE(cache.get_or_lower(b).cache_hit);  // re-lowered after eviction
}

TEST(PlanCache, ClearResetsEverything) {
  PlanCache cache;
  (void)cache.get_or_lower(coll::index_plan_key(IndexAlgorithm::kDirect, 5, 1, 0));
  cache.clear();
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

// ---------------------------------------------------------------------------
// Lowered plans equal the independently built schedules of sched/ — the
// same cross-check the reference implementations pass via their traces.

TEST(PlanLowering, IndexBruckMatchesBuiltSchedule) {
  for (const auto& [n, r, k, b] :
       std::vector<std::tuple<std::int64_t, std::int64_t, int, std::int64_t>>{
           {2, 2, 1, 3}, {7, 2, 1, 5}, {16, 4, 2, 8}, {21, 3, 2, 1},
           {32, 2, 4, 6}, {13, 13, 2, 9}}) {
    SCOPED_TRACE("n=" + std::to_string(n) + " r=" + std::to_string(r) +
                 " k=" + std::to_string(k) + " b=" + std::to_string(b));
    const auto plan = Plan::lower_index_bruck(n, k, r);
    sched::Schedule from_plan = plan->to_schedule(b);
    sched::Schedule built = sched::build_index_bruck(n, r, k, b);
    from_plan.normalize();
    built.normalize();
    EXPECT_TRUE(from_plan == built);
  }
}

TEST(PlanLowering, DirectAndPairwiseMatchBuiltSchedules) {
  for (const std::int64_t n : {2, 5, 9, 16}) {
    for (const int k : {1, 3}) {
      SCOPED_TRACE("n=" + std::to_string(n) + " k=" + std::to_string(k));
      sched::Schedule from_plan = Plan::lower_index_direct(n, k)->to_schedule(4);
      sched::Schedule built = sched::build_index_direct(n, k, 4);
      from_plan.normalize();
      built.normalize();
      EXPECT_TRUE(from_plan == built);
    }
  }
  sched::Schedule from_plan = Plan::lower_index_pairwise(16, 2)->to_schedule(4);
  sched::Schedule built = sched::build_index_pairwise(16, 2, 4);
  from_plan.normalize();
  built.normalize();
  EXPECT_TRUE(from_plan == built);
}

TEST(PlanLowering, ConcatBruckMatchesBuiltSchedule) {
  for (const auto& [n, k, b] :
       std::vector<std::tuple<std::int64_t, int, std::int64_t>>{
           {2, 1, 1}, {9, 2, 4}, {16, 3, 5}, {27, 2, 8}, {21, 4, 2}}) {
    for (const model::ConcatLastRound strategy :
         {model::ConcatLastRound::kColumnGranular,
          model::ConcatLastRound::kTwoRound}) {
      SCOPED_TRACE("n=" + std::to_string(n) + " k=" + std::to_string(k) +
                   " b=" + std::to_string(b));
      sched::Schedule from_plan =
          Plan::lower_concat_bruck(n, k, b, strategy)->to_schedule();
      sched::Schedule built = sched::build_concat_bruck(n, k, b, strategy);
      from_plan.normalize();
      built.normalize();
      EXPECT_TRUE(from_plan == built);
    }
  }
}

TEST(PlanLowering, ConcatBaselinesMatchBuiltSchedules) {
  for (const std::int64_t n : {2, 3, 8, 13}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    sched::Schedule folk_plan =
        Plan::lower_concat_folklore(n, 1, 6)->to_schedule();
    sched::Schedule folk_built = sched::build_concat_folklore(n, 6);
    folk_plan.normalize();
    folk_built.normalize();
    EXPECT_TRUE(folk_plan == folk_built);

    sched::Schedule ring_plan = Plan::lower_concat_ring(n, 1, 6)->to_schedule();
    sched::Schedule ring_built = sched::build_concat_ring(n, 6);
    ring_plan.normalize();
    ring_built.normalize();
    EXPECT_TRUE(ring_plan == ring_built);
  }
}

// ---------------------------------------------------------------------------
// Compiled vs reference execution: identical payloads, identical traces,
// identical round usage, over a random (n, k, r, b) sweep.

TEST(CompiledVsReference, IndexRandomSweep) {
  SplitMix64 rng(0x9E37C0DE);
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.next_below(24));
    const int k = 1 + static_cast<int>(rng.next_below(4));
    const std::int64_t b = static_cast<std::int64_t>(rng.next_below(20));
    const std::int64_t r =
        2 + static_cast<std::int64_t>(
                rng.next_below(static_cast<std::uint64_t>(std::max<std::int64_t>(
                    1, n - 1))));
    SCOPED_TRACE("n=" + std::to_string(n) + " r=" + std::to_string(r) +
                 " k=" + std::to_string(k) + " b=" + std::to_string(b));
    const std::uint64_t seed = rng.next();

    AlltoallOptions compiled;
    compiled.algorithm = IndexAlgorithm::kBruck;
    compiled.radix = r;
    compiled.path = ExecutionPath::kCompiled;
    AlltoallOptions reference = compiled;
    reference.path = ExecutionPath::kReference;

    const testutil::CollRun run_c = testutil::run_index(
        n, k, b,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return coll::alltoall(comm, send, recv, b, compiled);
        },
        seed);
    const testutil::CollRun run_r = testutil::run_index(
        n, k, b,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return coll::alltoall(comm, send, recv, b, reference);
        },
        seed);
    ASSERT_EQ(run_c.error, "");
    ASSERT_EQ(run_r.error, "");
    EXPECT_EQ(run_c.rounds_used, run_r.rounds_used);
    sched::Schedule exec_c = run_c.trace->to_schedule();
    sched::Schedule exec_r = run_r.trace->to_schedule();
    exec_c.normalize();
    exec_r.normalize();
    EXPECT_TRUE(exec_c == exec_r)
        << "compiled and reference traces diverge";
  }
}

TEST(CompiledVsReference, ConcatRandomSweep) {
  SplitMix64 rng(0xC0CA7EED);
  const ConcatAlgorithm algorithms[] = {
      ConcatAlgorithm::kBruck, ConcatAlgorithm::kFolklore,
      ConcatAlgorithm::kRing};
  // Always-feasible strategies; kByteSplit gets its own targeted sweep.
  const model::ConcatLastRound strategies[] = {
      model::ConcatLastRound::kAuto, model::ConcatLastRound::kColumnGranular,
      model::ConcatLastRound::kTwoRound};
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.next_below(24));
    const int k = 1 + static_cast<int>(rng.next_below(4));
    const std::int64_t b = static_cast<std::int64_t>(rng.next_below(16));
    const ConcatAlgorithm alg = algorithms[rng.next_below(3)];
    const model::ConcatLastRound strategy = strategies[rng.next_below(3)];
    SCOPED_TRACE("n=" + std::to_string(n) + " k=" + std::to_string(k) +
                 " b=" + std::to_string(b) + " alg=" + coll::to_string(alg) +
                 " strat=" + std::to_string(static_cast<int>(strategy)));
    const std::uint64_t seed = rng.next();

    AllgatherOptions compiled;
    compiled.algorithm = alg;
    compiled.last_round = strategy;
    compiled.path = ExecutionPath::kCompiled;
    AllgatherOptions reference = compiled;
    reference.path = ExecutionPath::kReference;

    const testutil::CollRun run_c = testutil::run_concat(
        n, k, b,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return coll::allgather(comm, send, recv, b, compiled);
        },
        seed);
    const testutil::CollRun run_r = testutil::run_concat(
        n, k, b,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return coll::allgather(comm, send, recv, b, reference);
        },
        seed);
    ASSERT_EQ(run_c.error, "");
    ASSERT_EQ(run_r.error, "");
    EXPECT_EQ(run_c.rounds_used, run_r.rounds_used);
    sched::Schedule exec_c = run_c.trace->to_schedule();
    sched::Schedule exec_r = run_r.trace->to_schedule();
    exec_c.normalize();
    exec_r.normalize();
    EXPECT_TRUE(exec_c == exec_r)
        << "compiled and reference traces diverge";
  }
}

TEST(CompiledVsReference, ConcatByteSplitWhereFeasible) {
  // The strategy whose byte-granular cells exercise the packed (staged)
  // wire path hardest; only valid where Proposition 4.2's partition exists.
  int covered = 0;
  for (const auto& [n, k, b] :
       std::vector<std::tuple<std::int64_t, int, std::int64_t>>{
           {6, 2, 4}, {11, 2, 7}, {13, 3, 2}, {20, 4, 5}, {23, 2, 9}}) {
    if (!model::concat_byte_split_feasible(n, k, b)) continue;
    ++covered;
    SCOPED_TRACE("n=" + std::to_string(n) + " k=" + std::to_string(k) +
                 " b=" + std::to_string(b));
    AllgatherOptions compiled;
    compiled.algorithm = ConcatAlgorithm::kBruck;
    compiled.last_round = model::ConcatLastRound::kByteSplit;
    compiled.path = ExecutionPath::kCompiled;
    AllgatherOptions reference = compiled;
    reference.path = ExecutionPath::kReference;

    const testutil::CollRun run_c = testutil::run_concat(
        n, k, b,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return coll::allgather(comm, send, recv, b, compiled);
        });
    const testutil::CollRun run_r = testutil::run_concat(
        n, k, b,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return coll::allgather(comm, send, recv, b, reference);
        });
    ASSERT_EQ(run_c.error, "");
    ASSERT_EQ(run_r.error, "");
    sched::Schedule exec_c = run_c.trace->to_schedule();
    sched::Schedule exec_r = run_r.trace->to_schedule();
    exec_c.normalize();
    exec_r.normalize();
    EXPECT_TRUE(exec_c == exec_r);
  }
  EXPECT_GE(covered, 3);  // the grid must actually exercise the strategy
}

// ---------------------------------------------------------------------------
// The acceptance criterion: a repeated same-geometry alltoall reports a
// PlanCache hit with zero re-planning work in the trace.

TEST(PlanCacheFacade, RepeatedAlltoallHitsWithZeroReplanning) {
  PlanCache::global().clear();
  const std::int64_t n = 8;
  const int k = 2;
  const std::int64_t b = 16;

  const auto run_once = [&] {
    return testutil::run_index(
        n, k, b,
        [&](mps::Communicator& comm, std::span<const std::byte> send,
            std::span<std::byte> recv) {
          return coll::alltoall(comm, send, recv, b);
        });
  };

  const testutil::CollRun first = run_once();
  ASSERT_EQ(first.error, "");
  const mps::PlanStats cold = first.trace->plan_stats();
  EXPECT_EQ(cold.uses, static_cast<std::uint64_t>(n));
  // Exactly one rank lowered the plan; the other n−1 rank calls hit.
  EXPECT_EQ(cold.misses, 1u);
  EXPECT_EQ(cold.hits, static_cast<std::uint64_t>(n - 1));
  const PlanCacheStats after_first = PlanCache::global().stats();
  EXPECT_EQ(after_first.entries, 1u);

  const testutil::CollRun second = run_once();
  ASSERT_EQ(second.error, "");
  const mps::PlanStats warm = second.trace->plan_stats();
  EXPECT_EQ(warm.uses, static_cast<std::uint64_t>(n));
  EXPECT_EQ(warm.misses, 0u);  // zero re-planning work
  EXPECT_EQ(warm.hits, static_cast<std::uint64_t>(n));
  // And the cache grew by nothing.
  const PlanCacheStats after_second = PlanCache::global().stats();
  EXPECT_EQ(after_second.entries, 1u);

  // The executed pattern is byte-identical between cold and warm runs.
  sched::Schedule cold_sched = first.trace->to_schedule();
  sched::Schedule warm_sched = second.trace->to_schedule();
  cold_sched.normalize();
  warm_sched.normalize();
  EXPECT_TRUE(cold_sched == warm_sched);
}

TEST(PlanCacheFacade, PlanStatsReportRoundsAndBytes) {
  PlanCache::global().clear();
  const std::int64_t n = 9;
  const int k = 2;
  const std::int64_t b = 8;
  const testutil::CollRun run = testutil::run_index(
      n, k, b,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        AlltoallOptions options;
        options.algorithm = IndexAlgorithm::kBruck;
        options.radix = 3;
        return coll::alltoall(comm, send, recv, b, options);
      });
  ASSERT_EQ(run.error, "");
  const mps::PlanStats stats = run.trace->plan_stats();
  // Σ per-rank bytes equals the trace's total network volume, and every
  // rank reports the plan's round count.
  EXPECT_EQ(stats.bytes_sent, run.trace->metrics().total_bytes);
  EXPECT_EQ(stats.rounds, static_cast<std::int64_t>(n) * run.rounds_used);
}

TEST(PlanCacheFacade, AllgatherGeometrySweepPopulatesDistinctEntries) {
  PlanCache::global().clear();
  for (const std::int64_t n : {4, 7}) {
    for (const int k : {1, 2}) {
      const testutil::CollRun run = testutil::run_concat(
          n, k, 6,
          [&](mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv) {
            return coll::allgather(comm, send, recv, 6);
          });
      ASSERT_EQ(run.error, "") << "n=" << n << " k=" << k;
    }
  }
  const PlanCacheStats stats = PlanCache::global().stats();
  EXPECT_EQ(stats.entries, 4u);  // one per geometry, no cross-talk
  EXPECT_EQ(stats.misses, 4u);
}

// ---------------------------------------------------------------------------
// The tuner memo: the kAuto radix decision is computed once per geometry.

TEST(TunerCache, CachedPickMatchesDirectPick) {
  model::clear_tuner_cache();
  const model::LinearModel machine = model::ibm_sp1();
  for (const std::int64_t b : {1, 64, 4096}) {
    const model::RadixChoice direct = model::pick_index_radix(64, 2, b, machine);
    const model::RadixChoice cached =
        model::pick_index_radix_cached(64, 2, b, machine);
    EXPECT_EQ(cached.radix, direct.radix);
    EXPECT_DOUBLE_EQ(cached.predicted_us, direct.predicted_us);
    // Second lookup is a hit.
    (void)model::pick_index_radix_cached(64, 2, b, machine);
  }
  const model::TunerCacheStats stats = model::tuner_cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 3u);
}

// ---------------------------------------------------------------------------
// Anatomy rendering (documented in the README): smoke-check the shape.

TEST(PlanDescribe, MentionsRoundsAndZeroCopy) {
  const auto plan = Plan::lower_index_direct(6, 2);
  const std::string text = plan->describe();
  EXPECT_NE(text.find("index/direct"), std::string::npos);
  EXPECT_NE(text.find("rounds"), std::string::npos);
  // Direct exchange sends straight out of the user buffer.
  EXPECT_NE(text.find("zero-copy"), std::string::npos);
}

}  // namespace
}  // namespace bruck
