// Radix tuning (Section 3.3's machine-parameter balancing) and the Fig. 5
// crossover machinery.
#include "model/tuner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/assert.hpp"

namespace bruck::model {
namespace {

TEST(CandidateRadices, Sets) {
  const auto all = candidate_radices(8, RadixSet::kAll, 1);
  EXPECT_EQ(all, (std::vector<std::int64_t>{2, 3, 4, 5, 6, 7, 8}));
  const auto pow2 = candidate_radices(64, RadixSet::kPowersOfTwo, 1);
  EXPECT_EQ(pow2, (std::vector<std::int64_t>{2, 4, 8, 16, 32, 64}));
  const auto pow2_odd = candidate_radices(5, RadixSet::kPowersOfTwo, 1);
  EXPECT_EQ(pow2_odd, (std::vector<std::int64_t>{2, 4, 5}));
  const auto aligned = candidate_radices(10, RadixSet::kPortAligned, 3);
  // (r−1) % 3 == 0 → {4, 7, 10}, plus always 2 and n.
  EXPECT_EQ(aligned, (std::vector<std::int64_t>{2, 4, 7, 10}));
  const auto tiny = candidate_radices(1, RadixSet::kAll, 1);
  EXPECT_EQ(tiny, (std::vector<std::int64_t>{2}));
}

TEST(Tuner, PicksTheCurveMinimum) {
  const LinearModel machine = ibm_sp1();
  for (std::int64_t n : {5, 16, 64}) {
    for (std::int64_t b : {1, 64, 4096}) {
      const auto curve = index_radix_curve(n, 1, b, machine, RadixSet::kAll);
      const RadixChoice best = pick_index_radix(n, 1, b, machine, RadixSet::kAll);
      for (const RadixChoice& c : curve) {
        EXPECT_LE(best.predicted_us, c.predicted_us + 1e-12)
            << "n=" << n << " b=" << b << " r=" << c.radix;
      }
    }
  }
}

TEST(Tuner, StartupDominatedPrefersSmallRadix) {
  // When β >> b·τ, C1 dominates: the minimum-round radix r = 2 must win.
  const RadixChoice c = pick_index_radix(64, 1, 1, startup_dominated());
  EXPECT_EQ(c.radix, 2);
}

TEST(Tuner, BandwidthDominatedPrefersLargeRadix) {
  // When β ≈ 0, C2 dominates: a volume-optimal radix must win.  For n = 64
  // both r = 63 and r = 64 achieve C2 = b(n−1); ties break low.
  LinearModel free_startup{"free-startup", 0.0, 1.0};
  const RadixChoice c = pick_index_radix(64, 1, 1024, free_startup);
  EXPECT_GE(c.radix, 63);
  EXPECT_EQ(c.metrics.c2, 1024 * 63);
}

TEST(Tuner, SP1RadixGrowsWithMessageSize) {
  // Fig. 6's qualitative claim: "As the message size increases, the minimal
  // time of the curve tends to occur at a higher radix."
  std::int64_t prev_radix = 2;
  for (std::int64_t b : {1, 16, 64, 256, 1024, 8192}) {
    const RadixChoice c = pick_index_radix(64, 1, b, ibm_sp1());
    EXPECT_GE(c.radix, prev_radix) << "b=" << b;
    prev_radix = c.radix;
  }
  // Largest blocks land on a volume-optimal radix (63 and 64 tie at n = 64).
  EXPECT_GE(pick_index_radix(64, 1, 8192, ibm_sp1()).radix, 63);
}

TEST(Tuner, CrossoverMatchesFig5Regime) {
  // Fig. 5: on the 64-node SP-1 the r = 2 and r = n curves cross at a
  // message size of about 100–200 bytes.  (The paper plots message size
  // m = b·n per... the per-destination block b; our model crossover lands in
  // the same order of magnitude.)
  const std::int64_t cross = crossover_block_bytes(64, 1, 2, 64, ibm_sp1());
  EXPECT_GT(cross, 8);
  EXPECT_LT(cross, 512);
  // Below the crossover r=2 wins, above it r=64 wins.
  const LinearModel m = ibm_sp1();
  const double below2 = m.predict_us(index_bruck_cost(64, 2, 1, cross / 2));
  const double below64 = m.predict_us(index_bruck_cost(64, 64, 1, cross / 2));
  EXPECT_LT(below2, below64);
  const double above2 = m.predict_us(index_bruck_cost(64, 2, 1, cross * 2));
  const double above64 = m.predict_us(index_bruck_cost(64, 64, 1, cross * 2));
  EXPECT_GT(above2, above64);
}

TEST(Tuner, CrossoverReturnsZeroWhenNoneExists) {
  // r = 2 against itself never crosses.
  EXPECT_EQ(crossover_block_bytes(64, 1, 2, 2, ibm_sp1()), 0);
}

TEST(Tuner, KPortCurveUsesAlignedRadices) {
  const auto curve =
      index_radix_curve(64, 3, 8, ibm_sp1(), RadixSet::kPortAligned);
  for (const RadixChoice& c : curve) {
    EXPECT_TRUE((c.radix - 1) % 3 == 0 || c.radix == 2 || c.radix == 64)
        << c.radix;
  }
}

// ---------------------------------------------------------------------------
// The learned-override seam: a tune::-installed override answers
// pick_*_cached before the memo caches, keyed on exactly the (family,
// geometry, machine-bits) that produced it.

TEST(TunerOverrides, OverrideShortCircuitsThePickForItsExactKey) {
  clear_tuner_cache();
  const TunerQuery query =
      make_tuner_query(TunedFamily::kIndexRadix, 32, 1, 8, ibm_sp1());
  TunerConfig cfg;
  cfg.radix = 9;  // a radix the model would never pick at 8-byte blocks
  cfg.segments = 4;
  set_tuner_override(query, cfg);

  const RadixChoice got = pick_index_radix_cached(32, 1, 8, ibm_sp1());
  EXPECT_EQ(got.radix, 9);
  EXPECT_EQ(got.segments_hint, 4);

  // A different geometry misses the override and gets the model's pick.
  const RadixChoice other = pick_index_radix_cached(32, 1, 16, ibm_sp1());
  EXPECT_EQ(other.radix, pick_index_radix(32, 1, 16, ibm_sp1()).radix);
  // A different machine misses it too (the bits are part of the key).
  const RadixChoice other_machine =
      pick_index_radix_cached(32, 1, 8, startup_dominated());
  EXPECT_EQ(other_machine.radix,
            pick_index_radix(32, 1, 8, startup_dominated()).radix);
  clear_tuner_cache();
}

TEST(TunerOverrides, ReduceScatterOverrideCanForceDirect) {
  clear_tuner_cache();
  const TunerQuery query =
      make_tuner_query(TunedFamily::kReduceScatter, 16, 1, 4, ibm_sp1());
  TunerConfig cfg;
  cfg.direct = true;  // tiny blocks: the model would pick Bruck
  set_tuner_override(query, cfg);
  const ReduceScatterChoice got =
      pick_reduce_scatter_cached(16, 1, 4, ibm_sp1());
  EXPECT_TRUE(got.direct);
  clear_tuner_cache();
  EXPECT_FALSE(pick_reduce_scatter_cached(16, 1, 4, ibm_sp1()).direct);
}

// ---------------------------------------------------------------------------
// The calibrated-machine substitution seam: a machine left at the
// compiled-in ibm_sp1 default is replaced by the active measured model;
// any other machine passes through untouched.

TEST(ActiveMachine, SentinelSubstitutionAndOptOut) {
  set_active_machine(std::nullopt);
  // No active model: everything passes through.
  EXPECT_EQ(effective_machine(ibm_sp1()).beta_us, ibm_sp1().beta_us);

  LinearModel measured{"measured", 7.5, 0.03125};
  measured.gamma_us_per_byte = 0.001;
  set_active_machine(measured);
  // The options-struct default is the sentinel: substituted.
  const LinearModel got = effective_machine(ibm_sp1());
  EXPECT_EQ(model_bits(got.beta_us), model_bits(7.5));
  EXPECT_EQ(model_bits(got.tau_us_per_byte), model_bits(0.03125));
  // An explicitly different machine opts out bit-for-bit.
  const LinearModel kept = effective_machine(startup_dominated());
  EXPECT_EQ(model_bits(kept.beta_us),
            model_bits(startup_dominated().beta_us));
  // Even a one-bit perturbation of the default opts out.
  LinearModel nudged = ibm_sp1();
  nudged.beta_us = std::nextafter(nudged.beta_us, 1e9);
  EXPECT_EQ(model_bits(effective_machine(nudged).beta_us),
            model_bits(nudged.beta_us));

  ASSERT_TRUE(active_machine().has_value());
  EXPECT_EQ(active_machine()->name, "measured");
  set_active_machine(std::nullopt);
  EXPECT_FALSE(active_machine().has_value());
}

TEST(ActiveMachine, TwoLevelSentinelFollowsTheSameRule) {
  set_active_machine(std::nullopt);
  set_active_two_level(std::nullopt);
  const TwoLevelModel sentinel = uniform_two_level(ibm_sp1());
  EXPECT_EQ(model_bits(effective_two_level(sentinel).inter.beta_us),
            model_bits(sentinel.inter.beta_us));

  LinearModel measured{"measured", 3.25, 0.0625};
  set_active_machine(measured);
  const TwoLevelModel swapped = effective_two_level(sentinel);
  EXPECT_EQ(model_bits(swapped.inter.beta_us), model_bits(3.25));
  // A non-default two-level model passes through.
  const TwoLevelModel custom = shm_socket_two_level();
  EXPECT_EQ(model_bits(effective_two_level(custom).inter.beta_us),
            model_bits(custom.inter.beta_us));
  set_active_machine(std::nullopt);
  set_active_two_level(std::nullopt);
}

}  // namespace
}  // namespace bruck::model
