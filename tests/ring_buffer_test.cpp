// The lock-free MPSC ring under contention: multi-producer hammering with
// per-producer FIFO and content verification, wraparound over a tiny
// capacity, backpressure (full-ring) behavior, and pending_bytes
// accounting.  Runs in-process over heap memory so the TSan CI job checks
// the ring's synchronization story directly — the same code path the
// shared-memory fabric runs cross-process (where TSan cannot see).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "mps/ring_buffer.hpp"
#include "util/assert.hpp"

namespace bruck::mps {
namespace {

/// Aligned heap region for a ring of `capacity` bytes.
struct Region {
  explicit Region(std::size_t capacity)
      : mem(static_cast<std::byte*>(
            std::aligned_alloc(64, MpscByteRing::region_bytes(capacity)))) {
    BRUCK_REQUIRE(mem != nullptr);
  }
  ~Region() { std::free(mem); }
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;
  std::byte* mem;
};

std::vector<std::byte> pattern_payload(std::int64_t producer, std::int64_t i,
                                       std::size_t len) {
  std::vector<std::byte> p(len);
  for (std::size_t j = 0; j < len; ++j) {
    p[j] = static_cast<std::byte>(
        static_cast<unsigned>(producer * 131 + i * 7 + static_cast<int>(j)));
  }
  return p;
}

TEST(MpscByteRing, SingleProducerFifoWithWraparound) {
  constexpr std::size_t kCap = 4096;  // tiny: forces many laps and pads
  Region region(kCap);
  MpscByteRing ring = MpscByteRing::create(region.mem, kCap);
  MpscByteRing producer_view = MpscByteRing::open(region.mem);

  // Varied sizes so records land at awkward offsets and the tail-gap pad
  // path triggers repeatedly.
  const std::size_t sizes[] = {1, 37, 256, 777, 64, 1000, 8, 513};
  std::int64_t pushed = 0;
  std::int64_t popped = 0;
  Message m;
  for (int lap = 0; lap < 200; ++lap) {
    for (const std::size_t len : sizes) {
      const auto payload = pattern_payload(1, pushed, len);
      RingFrame f;
      f.src = 1;
      f.seq = pushed;
      f.tag = 7;
      f.round = static_cast<std::int32_t>(lap);
      while (!producer_view.try_push(f, payload)) {
        // Full: drain one record on the consumer side and retry.
        ASSERT_TRUE(ring.try_pop(m));
        ASSERT_EQ(m.seq, popped);
        ++popped;
      }
      ++pushed;
    }
  }
  while (ring.try_pop(m)) {
    ASSERT_EQ(m.seq, popped);
    ASSERT_EQ(m.tag, 7);
    const auto expect =
        pattern_payload(1, popped, m.payload.size());
    ASSERT_EQ(std::memcmp(m.payload.data(), expect.data(), expect.size()), 0);
    ++popped;
  }
  EXPECT_EQ(popped, pushed);
  EXPECT_EQ(ring.pending_bytes(), 0u);
}

TEST(MpscByteRing, PendingBytesAccounting) {
  constexpr std::size_t kCap = 1 << 16;
  Region region(kCap);
  MpscByteRing ring = MpscByteRing::create(region.mem, kCap);

  std::size_t queued = 0;
  for (std::int64_t i = 0; i < 20; ++i) {
    const std::size_t len = 100 + static_cast<std::size_t>(i) * 13;
    ASSERT_TRUE(ring.try_push(RingFrame{0, i, 0, 0},
                              pattern_payload(0, i, len)));
    queued += len;
    EXPECT_EQ(ring.pending_bytes(), queued);
  }
  Message m;
  while (ring.try_pop(m)) queued -= m.payload.size();
  EXPECT_EQ(queued, 0u);
  EXPECT_EQ(ring.pending_bytes(), 0u);
}

TEST(MpscByteRing, OversizedSegmentThrows) {
  constexpr std::size_t kCap = 4096;
  Region region(kCap);
  MpscByteRing ring = MpscByteRing::create(region.mem, kCap);
  std::vector<std::byte> huge(kCap);  // > capacity/2 − header
  EXPECT_THROW((void)ring.try_push(RingFrame{}, huge), ContractViolation);
}

/// The satellite stress test: several producer threads hammer one ring with
/// randomized-size payloads through a deliberately small capacity (constant
/// backpressure, constant wraparound), while the consumer verifies strict
/// per-producer FIFO via sequence numbers and bitwise payload integrity.
/// Run under TSan in CI (the tsan job runs the whole suite).
TEST(MpscByteRing, MultiProducerStress) {
  constexpr std::size_t kCap = 1 << 14;  // 16 KiB: heavy contention
  constexpr int kProducers = 4;
  constexpr std::int64_t kPerProducer = 4000;
  Region region(kCap);
  MpscByteRing consumer = MpscByteRing::create(region.mem, kCap);

  std::atomic<bool> failed{false};
  std::vector<std::jthread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      MpscByteRing ring = MpscByteRing::open(region.mem);
      // Deterministic but different per producer; sizes hit the pad path.
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        const std::size_t len =
            1 + static_cast<std::size_t>((p * 997 + i * 31) % 700);
        const auto payload = pattern_payload(p, i, len);
        RingFrame f;
        f.src = p;
        f.seq = i;
        f.tag = 0;
        f.round = 0;
        while (!ring.try_push(f, payload)) {
          if (failed.load(std::memory_order_relaxed)) return;
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::int64_t> next_seq(kProducers, 0);
  std::int64_t received = 0;
  Message m;
  while (received < kProducers * kPerProducer) {
    if (!consumer.try_pop(m)) {
      std::this_thread::yield();
      continue;
    }
    const auto p = static_cast<std::size_t>(m.src);
    ASSERT_LT(m.src, kProducers);
    if (m.seq != next_seq[p]) {
      failed.store(true, std::memory_order_relaxed);
      FAIL() << "producer " << m.src << " delivered seq " << m.seq
             << " expected " << next_seq[p] << " (FIFO violated)";
    }
    const auto expect = pattern_payload(m.src, m.seq, m.payload.size());
    if (std::memcmp(m.payload.data(), expect.data(), expect.size()) != 0) {
      failed.store(true, std::memory_order_relaxed);
      FAIL() << "payload corrupted for producer " << m.src << " seq "
             << m.seq;
    }
    ++next_seq[p];
    ++received;
  }
  EXPECT_EQ(consumer.pending_bytes(), 0u);
  Message leftover;
  EXPECT_FALSE(consumer.try_pop(leftover));
}

}  // namespace
}  // namespace bruck::mps
