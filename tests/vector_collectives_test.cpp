// Irregular (vector) collectives: alltoallv / allgatherv through the plan
// engine vs the direct per-pair irregular oracle.
//
// The correctness story mirrors the uniform plan tests: (1) every compiled
// path (blocking and pipelined, all algorithms, segmented or not) must
// deliver exactly the payloads the oracle does, for skewed shapes
// including zero-length rows and one-hot skew; (2) the compiled direct
// path must equal the oracle transfer-for-transfer in the executed trace;
// (3) the PlanCache must hit on repeated same-shape calls and miss across
// shape buckets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "coll/api.hpp"
#include "coll/plan.hpp"
#include "coll/plan_cache.hpp"
#include "model/tuner.hpp"
#include "mps/runtime.hpp"
#include "util/rng.hpp"

namespace bruck {
namespace {

using coll::AllgathervOptions;
using coll::AlltoallvOptions;
using coll::ConcatAlgorithm;
using coll::ExecutionPath;
using coll::IndexAlgorithm;

// ---------------------------------------------------------------------------
// Shape and payload helpers.

std::vector<std::int64_t> prefix(const std::vector<std::int64_t>& sizes,
                                 std::int64_t gap = 0) {
  std::vector<std::int64_t> displs(sizes.size());
  std::int64_t pos = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    displs[i] = pos;
    pos += sizes[i] + gap;
  }
  return displs;
}

std::int64_t sum(const std::vector<std::int64_t>& v) {
  std::int64_t s = 0;
  for (const std::int64_t x : v) s += x;
  return s;
}

enum class Skew { kUniformRandom, kZeroRows, kOneHot, kHeavyTail };

/// A random n×n count matrix under the given skew pattern.
std::vector<std::int64_t> make_matrix(std::int64_t n, Skew skew,
                                      std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n * n), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    switch (skew) {
      case Skew::kUniformRandom:
        for (std::int64_t j = 0; j < n; ++j) {
          counts[static_cast<std::size_t>(i * n + j)] =
              static_cast<std::int64_t>(rng.next_below(64));
        }
        break;
      case Skew::kZeroRows:
        if (rng.next_below(2) == 0) break;  // whole row stays zero
        for (std::int64_t j = 0; j < n; ++j) {
          counts[static_cast<std::size_t>(i * n + j)] =
              static_cast<std::int64_t>(rng.next_below(32));
        }
        break;
      case Skew::kOneHot: {
        const std::int64_t hot =
            static_cast<std::int64_t>(rng.next_below(
                static_cast<std::uint64_t>(n)));
        counts[static_cast<std::size_t>(i * n + hot)] =
            static_cast<std::int64_t>(1 + rng.next_below(256));
        break;
      }
      case Skew::kHeavyTail:
        for (std::int64_t j = 0; j < n; ++j) {
          // Mostly tiny, occasionally ~100x heavier.
          const bool heavy = rng.next_below(8) == 0;
          counts[static_cast<std::size_t>(i * n + j)] =
              static_cast<std::int64_t>(
                  heavy ? 128 + rng.next_below(512) : rng.next_below(8));
        }
        break;
    }
  }
  return counts;
}

/// Block (src → dst) payload: pure function of (seed, src, dst, offset).
void fill_pair_block(std::span<std::byte> out, std::uint64_t seed,
                     std::int64_t src, std::int64_t dst) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = payload_byte(seed, src, dst, i);
  }
}

std::string check_pair_block(std::span<const std::byte> got,
                             std::uint64_t seed, std::int64_t src,
                             std::int64_t dst) {
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != payload_byte(seed, src, dst, i)) {
      return "mismatch in block (" + std::to_string(src) + " -> " +
             std::to_string(dst) + ") at offset " + std::to_string(i);
    }
  }
  return "";
}

struct VectorRun {
  std::shared_ptr<mps::Trace> trace;
  std::string error;
  int rounds_used = 0;
};

/// Run alltoallv on the threaded fabric with deterministic per-pair
/// payloads; `gap` > 0 exercises non-canonical displacements.
VectorRun run_alltoallv(std::int64_t n, int k,
                        const std::vector<std::int64_t>& counts,
                        const AlltoallvOptions& options, std::int64_t gap = 0,
                        std::uint64_t seed = 7) {
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  std::vector<int> rounds(static_cast<std::size_t>(n), -1);
  mps::RunResult rr = mps::run_spmd(n, k, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::int64_t> row(
        counts.begin() + static_cast<std::ptrdiff_t>(rank * n),
        counts.begin() + static_cast<std::ptrdiff_t>((rank + 1) * n));
    std::vector<std::int64_t> col(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      col[static_cast<std::size_t>(i)] =
          counts[static_cast<std::size_t>(i * n + rank)];
    }
    const std::vector<std::int64_t> sdispls = prefix(row, gap);
    const std::vector<std::int64_t> rdispls = prefix(col, gap);
    std::vector<std::byte> send(
        static_cast<std::size_t>(sum(row) + gap * n));
    std::vector<std::byte> recv(static_cast<std::size_t>(sum(col) + gap * n),
                                std::byte{0xEE});
    for (std::int64_t j = 0; j < n; ++j) {
      fill_pair_block(
          std::span<std::byte>(send).subspan(
              static_cast<std::size_t>(sdispls[static_cast<std::size_t>(j)]),
              static_cast<std::size_t>(row[static_cast<std::size_t>(j)])),
          seed, rank, j);
    }
    rounds[static_cast<std::size_t>(rank)] =
        gap == 0 ? coll::alltoallv(comm, send, recv, counts, {}, {}, options)
                 : coll::alltoallv(comm, send, recv, counts, sdispls, rdispls,
                                   options);
    for (std::int64_t i = 0; i < n; ++i) {
      const std::string err = check_pair_block(
          std::span<const std::byte>(recv).subspan(
              static_cast<std::size_t>(rdispls[static_cast<std::size_t>(i)]),
              static_cast<std::size_t>(col[static_cast<std::size_t>(i)])),
          seed, i, rank);
      if (!err.empty() && errors[static_cast<std::size_t>(rank)].empty()) {
        errors[static_cast<std::size_t>(rank)] = err;
      }
    }
  });
  VectorRun out;
  out.trace = rr.trace;
  out.rounds_used = rounds.empty() ? 0 : rounds[0];
  for (std::int64_t r = 0; r < n; ++r) {
    if (!errors[static_cast<std::size_t>(r)].empty() && out.error.empty()) {
      out.error = errors[static_cast<std::size_t>(r)];
    }
    if (rounds[static_cast<std::size_t>(r)] != out.rounds_used &&
        out.error.empty()) {
      out.error = "ranks disagree on rounds used";
    }
  }
  return out;
}

VectorRun run_allgatherv(std::int64_t n, int k,
                         const std::vector<std::int64_t>& counts,
                         const AllgathervOptions& options,
                         std::int64_t gap = 0, std::uint64_t seed = 11) {
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  std::vector<int> rounds(static_cast<std::size_t>(n), -1);
  mps::RunResult rr = mps::run_spmd(n, k, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    const std::vector<std::int64_t> rdispls = prefix(counts, gap);
    std::vector<std::byte> send(static_cast<std::size_t>(
        counts[static_cast<std::size_t>(rank)]));
    std::vector<std::byte> recv(
        static_cast<std::size_t>(sum(counts) + gap * n), std::byte{0xEE});
    fill_pair_block(send, seed, rank, 0);
    rounds[static_cast<std::size_t>(rank)] =
        gap == 0 ? coll::allgatherv(comm, send, recv, counts, {}, options)
                 : coll::allgatherv(comm, send, recv, counts, rdispls,
                                    options);
    for (std::int64_t i = 0; i < n; ++i) {
      const std::string err = check_pair_block(
          std::span<const std::byte>(recv).subspan(
              static_cast<std::size_t>(rdispls[static_cast<std::size_t>(i)]),
              static_cast<std::size_t>(
                  counts[static_cast<std::size_t>(i)])),
          seed, i, 0);
      if (!err.empty() && errors[static_cast<std::size_t>(rank)].empty()) {
        errors[static_cast<std::size_t>(rank)] = err;
      }
    }
  });
  VectorRun out;
  out.trace = rr.trace;
  out.rounds_used = rounds.empty() ? 0 : rounds[0];
  for (std::int64_t r = 0; r < n; ++r) {
    if (!errors[static_cast<std::size_t>(r)].empty() && out.error.empty()) {
      out.error = errors[static_cast<std::size_t>(r)];
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shape digests and keys.

TEST(ShapeDigest, SameBucketHitsDifferentShapeMisses) {
  const std::vector<std::int64_t> a{100, 0, 7, 33};
  const std::vector<std::int64_t> same_buckets{120, 0, 5, 60};  // same widths
  const std::vector<std::int64_t> different{100, 0, 7, 300};
  const std::vector<std::int64_t> zero_flip{100, 1, 7, 33};
  EXPECT_EQ(coll::shape_digest(a), coll::shape_digest(a));
  EXPECT_EQ(coll::shape_digest(a), coll::shape_digest(same_buckets));
  EXPECT_NE(coll::shape_digest(a), coll::shape_digest(different));
  EXPECT_NE(coll::shape_digest(a), coll::shape_digest(zero_flip));
  EXPECT_NE(coll::shape_digest(a), 0u);
}

TEST(ShapeDigest, KeysSplitOnDigestAndMatchWithinBucket) {
  const std::vector<std::int64_t> a{16, 16, 16, 16};
  const std::vector<std::int64_t> b{17, 30, 20, 16};   // same log2 buckets
  const std::vector<std::int64_t> c{64, 16, 16, 16};   // different bucket
  const auto key_a = coll::indexv_plan_key(IndexAlgorithm::kDirect, 2, 1, 0,
                                           coll::shape_digest(a));
  const auto key_b = coll::indexv_plan_key(IndexAlgorithm::kDirect, 2, 1, 0,
                                           coll::shape_digest(b));
  const auto key_c = coll::indexv_plan_key(IndexAlgorithm::kDirect, 2, 1, 0,
                                           coll::shape_digest(c));
  EXPECT_TRUE(key_a == key_b);
  EXPECT_FALSE(key_a == key_c);
  // Vector keys never collide with uniform keys for the same geometry.
  const auto uniform = coll::index_plan_key(IndexAlgorithm::kDirect, 2, 1, 0);
  EXPECT_FALSE(key_a == uniform);
}

TEST(PlanCacheVector, RepeatedShapeHitsAcrossBucketMisses) {
  const std::int64_t n = 6;
  const std::vector<std::int64_t> counts = make_matrix(n, Skew::kHeavyTail, 3);
  std::vector<std::int64_t> doubled(counts);
  for (std::int64_t& c : doubled) c = c * 16 + 1024;  // shifts every bucket
  AlltoallvOptions options;
  options.algorithm = IndexAlgorithm::kDirect;
  options.segments = 1;

  const coll::PlanCacheStats before = coll::PlanCache::global().stats();
  EXPECT_EQ(run_alltoallv(n, 2, counts, options).error, "");
  EXPECT_EQ(run_alltoallv(n, 2, counts, options).error, "");
  const coll::PlanCacheStats after_same = coll::PlanCache::global().stats();
  // One lowering for the shape; every other rank call across both runs hit.
  EXPECT_EQ(after_same.misses - before.misses, 1u);
  EXPECT_EQ(after_same.hits - before.hits,
            static_cast<std::uint64_t>(2 * n - 1));

  EXPECT_EQ(run_alltoallv(n, 2, doubled, options).error, "");
  const coll::PlanCacheStats after_diff = coll::PlanCache::global().stats();
  EXPECT_EQ(after_diff.misses - after_same.misses, 1u);  // new bucket
}

// ---------------------------------------------------------------------------
// The vector tuner.

TEST(VectorTuner, LargeUniformPairsPickDirectTinyPairsPickBruck) {
  const model::LinearModel machine = model::ibm_sp1();
  // 64 ranks × 1 MiB pairs: start-up time is irrelevant, direct's minimal
  // C2 wins (the uniform paper trade-off at large b).
  const std::int64_t big_total = std::int64_t{64} * 64 * (1 << 20);
  const auto big = model::pick_indexv(64, 1, big_total, 1 << 20, machine);
  EXPECT_TRUE(big.direct);
  // 64 ranks × 2-byte pairs: ⌈(n−1)/k⌉ start-ups dwarf the data, Bruck's
  // few rounds win.
  const auto tiny = model::pick_indexv(64, 1, 64 * 64 * 2, 2, machine);
  EXPECT_FALSE(tiny.direct);
  EXPECT_GE(tiny.radix, 2);
  // Empty shapes resolve to direct (pure round counting).
  EXPECT_TRUE(model::pick_indexv(8, 2, 0, 0, machine).direct);
}

TEST(VectorTuner, CachedPickIsStableWithinABucket) {
  const model::LinearModel machine = model::ibm_sp1();
  const auto a = model::pick_indexv_cached(16, 2, 5000, 100, machine);
  const auto b = model::pick_indexv_cached(16, 2, 5100, 120, machine);
  EXPECT_EQ(a.direct, b.direct);
  EXPECT_EQ(a.radix, b.radix);
  EXPECT_EQ(a.predicted_us, b.predicted_us);
}

// ---------------------------------------------------------------------------
// Payload correctness: every compiled path vs the oracle's contract.

TEST(Alltoallv, AllAlgorithmsAllPathsOnSkewedShapes) {
  for (const Skew skew : {Skew::kUniformRandom, Skew::kZeroRows,
                          Skew::kOneHot, Skew::kHeavyTail}) {
    for (const auto& [n, k] :
         std::vector<std::pair<std::int64_t, int>>{{1, 1}, {2, 1}, {5, 2},
                                                   {8, 2}, {13, 3}}) {
      const std::vector<std::int64_t> counts =
          make_matrix(n, skew, 100 + static_cast<std::uint64_t>(n));
      for (const ExecutionPath path :
           {ExecutionPath::kReference, ExecutionPath::kCompiled,
            ExecutionPath::kPipelined}) {
        for (const IndexAlgorithm algorithm :
             {IndexAlgorithm::kAuto, IndexAlgorithm::kBruck,
              IndexAlgorithm::kDirect}) {
          AlltoallvOptions options;
          options.algorithm = algorithm;
          options.path = path;
          if (algorithm == IndexAlgorithm::kBruck) options.radix = 2;
          SCOPED_TRACE("skew=" + std::to_string(static_cast<int>(skew)) +
                       " n=" + std::to_string(n) + " k=" + std::to_string(k) +
                       " path=" + coll::to_string(path) +
                       " algorithm=" + coll::to_string(algorithm));
          EXPECT_EQ(run_alltoallv(n, k, counts, options).error, "");
        }
      }
    }
  }
}

TEST(Alltoallv, PairwiseOnPowerOfTwo) {
  const std::vector<std::int64_t> counts = make_matrix(8, Skew::kHeavyTail, 5);
  for (const ExecutionPath path :
       {ExecutionPath::kCompiled, ExecutionPath::kPipelined}) {
    AlltoallvOptions options;
    options.algorithm = IndexAlgorithm::kPairwise;
    options.path = path;
    EXPECT_EQ(run_alltoallv(8, 2, counts, options).error, "");
  }
}

TEST(Alltoallv, AllZeroShapeIsPureRoundCounting) {
  const std::vector<std::int64_t> counts(
      static_cast<std::size_t>(6 * 6), 0);
  for (const ExecutionPath path :
       {ExecutionPath::kReference, ExecutionPath::kPipelined}) {
    AlltoallvOptions options;
    options.path = path;
    options.algorithm = IndexAlgorithm::kDirect;
    const VectorRun run = run_alltoallv(6, 2, counts, options);
    EXPECT_EQ(run.error, "");
    EXPECT_EQ(run.trace->event_count(), 0u);  // nothing touched the fabric
    EXPECT_EQ(run.rounds_used, 3);            // ⌈(n−1)/k⌉ rounds counted
  }
}

TEST(Alltoallv, NonCanonicalDisplacements) {
  const std::vector<std::int64_t> counts =
      make_matrix(7, Skew::kUniformRandom, 21);
  for (const IndexAlgorithm algorithm :
       {IndexAlgorithm::kBruck, IndexAlgorithm::kDirect}) {
    AlltoallvOptions options;
    options.algorithm = algorithm;
    options.radix = 3;
    EXPECT_EQ(run_alltoallv(7, 2, counts, options, /*gap=*/5).error, "");
  }
}

TEST(Alltoallv, SegmentedPipelinedMatches) {
  const std::vector<std::int64_t> counts =
      make_matrix(6, Skew::kHeavyTail, 33);
  for (const int segments : {1, 2, 4}) {
    AlltoallvOptions options;
    options.segments = segments;
    options.algorithm = IndexAlgorithm::kBruck;
    options.radix = 2;
    EXPECT_EQ(run_alltoallv(6, 2, counts, options).error, "");
  }
}

TEST(Alltoallv, PipelinedDirectTraceEqualsOracle) {
  // The compiled direct plan mirrors the oracle's round structure, so the
  // executed traces must agree transfer-for-transfer — heterogeneous byte
  // counts and all (the C1/C2 accounting extended to non-uniform bytes).
  const std::vector<std::int64_t> counts =
      make_matrix(9, Skew::kHeavyTail, 77);
  AlltoallvOptions pipelined;
  pipelined.algorithm = IndexAlgorithm::kDirect;
  pipelined.path = ExecutionPath::kPipelined;
  AlltoallvOptions reference = pipelined;
  reference.path = ExecutionPath::kReference;
  const VectorRun run_p = run_alltoallv(9, 2, counts, pipelined);
  const VectorRun run_r = run_alltoallv(9, 2, counts, reference);
  ASSERT_EQ(run_p.error, "");
  ASSERT_EQ(run_r.error, "");
  sched::Schedule exec_p = run_p.trace->to_schedule();
  sched::Schedule exec_r = run_r.trace->to_schedule();
  exec_p.normalize();
  exec_r.normalize();
  EXPECT_TRUE(exec_p == exec_r) << "pipelined and oracle traces diverge";
  EXPECT_EQ(run_p.trace->metrics(), run_r.trace->metrics());
}

TEST(Alltoallv, RandomSweep) {
  SplitMix64 rng(2026);
  for (int trial = 0; trial < 24; ++trial) {
    const std::int64_t n =
        1 + static_cast<std::int64_t>(rng.next_below(32));
    const int k = 1 + static_cast<int>(rng.next_below(4));
    const Skew skew = static_cast<Skew>(rng.next_below(4));
    const std::vector<std::int64_t> counts = make_matrix(n, skew, rng.next());
    AlltoallvOptions options;
    options.path = rng.next_below(2) == 0 ? ExecutionPath::kPipelined
                                          : ExecutionPath::kCompiled;
    options.segments = static_cast<int>(rng.next_below(3));
    SCOPED_TRACE("trial=" + std::to_string(trial) + " n=" + std::to_string(n) +
                 " k=" + std::to_string(k) +
                 " skew=" + std::to_string(static_cast<int>(skew)));
    EXPECT_EQ(run_alltoallv(n, k, counts, options).error, "");
  }
}

// ---------------------------------------------------------------------------
// Allgatherv.

TEST(Allgatherv, AllAlgorithmsAllPathsOnSkewedCounts) {
  for (const auto& [n, k] :
       std::vector<std::pair<std::int64_t, int>>{{1, 1}, {2, 1}, {6, 2},
                                                 {9, 3}, {13, 2}}) {
    SplitMix64 rng(static_cast<std::uint64_t>(n) * 31);
    std::vector<std::int64_t> counts(static_cast<std::size_t>(n));
    for (std::int64_t& c : counts) {
      // Mix of empty, small, and heavy blocks.
      const std::uint64_t kind = rng.next_below(4);
      c = kind == 0 ? 0
                    : static_cast<std::int64_t>(
                          kind == 3 ? 200 + rng.next_below(300)
                                    : rng.next_below(24));
    }
    for (const ExecutionPath path :
         {ExecutionPath::kReference, ExecutionPath::kCompiled,
          ExecutionPath::kPipelined}) {
      for (const ConcatAlgorithm algorithm :
           {ConcatAlgorithm::kBruck, ConcatAlgorithm::kFolklore,
            ConcatAlgorithm::kRing}) {
        AllgathervOptions options;
        options.algorithm = algorithm;
        options.path = path;
        SCOPED_TRACE("n=" + std::to_string(n) + " k=" + std::to_string(k) +
                     " path=" + coll::to_string(path) +
                     " algorithm=" + coll::to_string(algorithm));
        EXPECT_EQ(run_allgatherv(n, k, counts, options).error, "");
      }
    }
  }
}

TEST(Allgatherv, RandomSweepWithDisplacements) {
  SplitMix64 rng(424242);
  for (int trial = 0; trial < 16; ++trial) {
    const std::int64_t n =
        1 + static_cast<std::int64_t>(rng.next_below(32));
    const int k = 1 + static_cast<int>(rng.next_below(4));
    std::vector<std::int64_t> counts(static_cast<std::size_t>(n));
    for (std::int64_t& c : counts) {
      c = static_cast<std::int64_t>(rng.next_below(128));
    }
    AllgathervOptions options;
    options.path = rng.next_below(2) == 0 ? ExecutionPath::kPipelined
                                          : ExecutionPath::kCompiled;
    const std::int64_t gap = static_cast<std::int64_t>(rng.next_below(8));
    SCOPED_TRACE("trial=" + std::to_string(trial) + " n=" + std::to_string(n) +
                 " k=" + std::to_string(k) + " gap=" + std::to_string(gap));
    EXPECT_EQ(run_allgatherv(n, k, counts, options, gap).error, "");
  }
}

TEST(Allgatherv, RepeatedShapeHitsThePlanCache) {
  const std::vector<std::int64_t> counts{40, 0, 13, 200, 7};
  AllgathervOptions options;
  options.segments = 1;
  const coll::PlanCacheStats before = coll::PlanCache::global().stats();
  EXPECT_EQ(run_allgatherv(5, 2, counts, options).error, "");
  EXPECT_EQ(run_allgatherv(5, 2, counts, options).error, "");
  const coll::PlanCacheStats after = coll::PlanCache::global().stats();
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_GT(after.hits - before.hits, 0u);
}

}  // namespace
}  // namespace bruck
