#include "util/radix.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck {
namespace {

TEST(RadixDigitCount, MatchesPaperExamples) {
  // Section 3.2: block-ids 0..n-1 need w = ceil(log_r n) digits.
  EXPECT_EQ(radix_digit_count(5, 2), 3);
  EXPECT_EQ(radix_digit_count(5, 3), 2);  // "5 is encoded into 12 base 3"
  EXPECT_EQ(radix_digit_count(64, 2), 6);
  EXPECT_EQ(radix_digit_count(64, 8), 2);
  EXPECT_EQ(radix_digit_count(1, 2), 0);
}

TEST(RadixDigits, PaperExampleFiveBaseThree) {
  // "5 is encoded into '12' using radix-3 representation": digit 0 is 2,
  // digit 1 is 1 — so block 5 first rotates 2 (step 2 of subphase 0), then 3
  // (step 1 of subphase 1).
  EXPECT_EQ(radix_digit(5, 3, 0), 2);
  EXPECT_EQ(radix_digit(5, 3, 1), 1);
  const auto digits = radix_digits(5, 3, 2);
  ASSERT_EQ(digits.size(), 2u);
  EXPECT_EQ(digits[0], 2);
  EXPECT_EQ(digits[1], 1);
}

TEST(RadixDigits, RoundTripExhaustive) {
  for (std::int64_t r = 2; r <= 9; ++r) {
    for (std::int64_t v = 0; v < 600; ++v) {
      const int w = radix_digit_count(v + 1, r);
      const auto digits = radix_digits(v, r, w == 0 ? 1 : w);
      EXPECT_EQ(radix_compose(digits, r), v) << "v=" << v << " r=" << r;
      for (std::size_t x = 0; x < digits.size(); ++x) {
        EXPECT_EQ(digits[x], radix_digit(v, r, static_cast<int>(x)));
      }
    }
  }
}

TEST(RadixDigits, RejectsValueTooLarge) {
  EXPECT_THROW(radix_digits(8, 2, 3), ContractViolation);  // needs 4 digits
  EXPECT_NO_THROW((void)radix_digits(7, 2, 3));
}

TEST(SubphaseHeight, FullAndPartialSubphases) {
  // n = 5, r = 2: w = 3 subphases; heights ceil(5/1)=5→2, ceil(5/2)=3→2,
  // ceil(5/4)=2.
  EXPECT_EQ(radix_subphase_height(5, 2, 0), 2);
  EXPECT_EQ(radix_subphase_height(5, 2, 1), 2);
  EXPECT_EQ(radix_subphase_height(5, 2, 2), 2);
  // n = 5, r = 3: subphase 0 full (h = 3), subphase 1 partial (h = ceil(5/3) = 2).
  EXPECT_EQ(radix_subphase_height(5, 3, 0), 3);
  EXPECT_EQ(radix_subphase_height(5, 3, 1), 2);
  // n = 7, r = 4: subphase 1 has h = ceil(7/4) = 2 (only step z = 1).
  EXPECT_EQ(radix_subphase_height(7, 4, 1), 2);
}

TEST(SubphaseHeight, LastSubphaseMatchesAppendixA) {
  // Appendix A line 8: in the last subphase h = ceil(n / dist).
  for (std::int64_t n = 2; n <= 100; ++n) {
    for (std::int64_t r = 2; r <= n; ++r) {
      const int w = radix_digit_count(n, r);
      const std::int64_t dist = ipow(r, w - 1);
      EXPECT_EQ(radix_subphase_height(n, r, w - 1), ceil_div(n, dist))
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(DigitCensus, MatchesMembersExhaustive) {
  for (std::int64_t n : {1, 2, 3, 5, 7, 8, 12, 16, 27, 31, 64}) {
    for (std::int64_t r = 2; r <= std::min<std::int64_t>(n + 1, 9); ++r) {
      const int w = radix_digit_count(n, r);
      for (int x = 0; x < std::max(w, 1); ++x) {
        std::int64_t total = 0;
        for (std::int64_t z = 0; z < r; ++z) {
          const auto members = radix_digit_members(n, r, x, z);
          EXPECT_EQ(static_cast<std::int64_t>(members.size()),
                    radix_digit_census(n, r, x, z))
              << "n=" << n << " r=" << r << " x=" << x << " z=" << z;
          for (std::int64_t m : members) EXPECT_EQ(radix_digit(m, r, x), z);
          total += static_cast<std::int64_t>(members.size());
        }
        EXPECT_EQ(total, n);  // digit classes partition [0, n)
      }
    }
  }
}

TEST(DigitCensus, BoundedByMaxCensus) {
  // Section 3.2 quotes the bound ⌈n/r⌉; the exact bound is radix_max_census
  // (the two agree when n is a power of r, and the top truncated digit can
  // exceed ⌈n/r⌉ otherwise — see the header note).
  for (std::int64_t n = 1; n <= 80; ++n) {
    for (std::int64_t r = 2; r <= std::max<std::int64_t>(2, n); ++r) {
      const std::int64_t cap = n == 1 ? 0 : radix_max_census(n, r);
      const int w = radix_digit_count(n, r);
      for (int x = 0; x < w; ++x) {
        for (std::int64_t z = 1; z < radix_subphase_height(n, r, x); ++z) {
          EXPECT_LE(radix_digit_census(n, r, x, z), cap);
          EXPECT_GE(radix_digit_census(n, r, x, z), 1)
              << "every step within the subphase height moves >= 1 block";
        }
      }
    }
  }
}

TEST(DigitCensus, PaperBoundExactForPowersOfR) {
  // When n = r^w the Section 3.2 bound b·⌈n/r⌉ holds with equality at the
  // top subphase.
  for (std::int64_t r = 2; r <= 6; ++r) {
    for (int w = 1; w <= 4; ++w) {
      const std::int64_t n = ipow(r, w);
      if (n > 1300) continue;
      EXPECT_EQ(radix_max_census(n, r), ceil_div(n, r)) << "n=" << n
                                                        << " r=" << r;
    }
  }
}

TEST(DigitCensus, TopDigitCanExceedPaperBound) {
  // The documented counterexample: n = 16, r = 3.
  EXPECT_EQ(radix_max_census(16, 3), 7);
  EXPECT_EQ(ceil_div(16, 3), 6);
  EXPECT_EQ(radix_digit_census(16, 3, 2, 1), 7);
}

}  // namespace
}  // namespace bruck
