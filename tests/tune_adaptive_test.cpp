// The adaptive autotuner, driven entirely by injected deterministic
// "wall times" (a fake clock — no real timing, no flakiness):
//
//   * exploration walks the fixed arm schedule, then locks;
//   * a neighbor wins only past the hysteresis gate (full evidence on both
//     sides AND a ≥ min_margin better mean);
//   * once locked a key never changes again (no oscillation), and a
//     non-incumbent winner is remembered as a model-layer override;
//   * a locked winner persists to the tune table and reloads bitwise;
//   * clear_tuner_cache() wipes learned-in-memory overrides but a
//     file-backed table (set_tune_table_source) restores its entries —
//     the file is the source of truth.
#include "tune/adaptive.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "coll/api.hpp"
#include "gtest/gtest.h"
#include "model/linear_model.hpp"
#include "model/tuner.hpp"
#include "mps/bootstrap.hpp"
#include "tune/runtime.hpp"
#include "tune/table.hpp"

#include <unistd.h>

namespace bruck {
namespace {

/// One tuned decision point: flat alltoall, n = 8 where the incumbent
/// radix 4 has neighbors 3 and 5 plus the segment arms.
model::TunerQuery make_query(std::int64_t block_bytes) {
  return model::make_tuner_query(model::TunedFamily::kIndexRadix, 8, 1,
                                 block_bytes, model::ibm_sp1());
}

model::TunerConfig incumbent_config() {
  model::TunerConfig base;
  base.radix = 4;
  base.segments = 1;
  return base;
}

/// Drive decide/observe through the whole exploration horizon with a fake
/// clock: `fake_us(config)` is the deterministic "measured" wall time of
/// one execution of that arm.  Returns the post-lock decision.
template <typename FakeClock>
model::TunerConfig run_to_lock(tune::AdaptiveTuner& tuner,
                               const model::TunerQuery& query,
                               const model::TunerConfig& base,
                               FakeClock fake_us) {
  // 4 arms (incumbent r4, r3, r5, segments 2) × min_observations.
  const int arms = 4;
  const int horizon = arms * tuner.options().min_observations;
  for (int i = 0; i < horizon; ++i) {
    const auto decided = tuner.decide(query, base);
    EXPECT_TRUE(decided.has_value()) << "call " << i;
    if (!decided) return base;
    model::ExecutionSample sample;
    sample.query = query;
    sample.config = *decided;
    sample.wall_us = fake_us(*decided);
    tuner.observe(sample);
  }
  const auto locked = tuner.decide(query, base);
  EXPECT_TRUE(locked.has_value());
  return locked.value_or(base);
}

TEST(AdaptiveTuner, ExploresEveryArmThenLocksOnTheFastest) {
  model::clear_tuner_cache();
  tune::AdaptiveTuner tuner(tune::AdaptiveOptions{2, 0.05});
  const model::TunerQuery query = make_query(1024);
  const model::TunerConfig base = incumbent_config();

  // Fake clock: radix 5 is 40% faster than the incumbent; everything else
  // slower.
  std::vector<model::TunerConfig> schedule;
  const model::TunerConfig winner = run_to_lock(
      tuner, query, base, [&schedule](const model::TunerConfig& c) {
        schedule.push_back(c);
        if (c.radix == 5) return 60.0;
        if (c.radix == 4) return 100.0;
        return 110.0;
      });
  // The schedule visited each arm min_observations times, incumbent first.
  ASSERT_EQ(schedule.size(), 8u);
  EXPECT_EQ(schedule[0].radix, 4);
  EXPECT_EQ(schedule[1].radix, 4);
  int saw_r5 = 0;
  for (const auto& c : schedule) saw_r5 += c.radix == 5 ? 1 : 0;
  EXPECT_EQ(saw_r5, 2);

  EXPECT_EQ(winner.radix, 5);
  EXPECT_EQ(tuner.locked_count(), 1u);
  // Switch-and-remember: the winner is now a model-layer override, so
  // pick_*_cached short-circuits to it for exactly this key.
  const auto override_cfg = model::tuner_override(query);
  ASSERT_TRUE(override_cfg.has_value());
  EXPECT_EQ(override_cfg->radix, 5);
  ASSERT_EQ(tuner.learned().size(), 1u);
  EXPECT_EQ(tuner.learned()[0].config.radix, 5);
  model::clear_tuner_cache();
}

TEST(AdaptiveTuner, HysteresisKeepsTheIncumbentOnThinMargins) {
  model::clear_tuner_cache();
  tune::AdaptiveTuner tuner(tune::AdaptiveOptions{2, 0.05});
  const model::TunerQuery query = make_query(2048);
  const model::TunerConfig base = incumbent_config();

  // Radix 5 is only 3% faster — under the 5% margin, so no switch.
  const model::TunerConfig winner =
      run_to_lock(tuner, query, base, [](const model::TunerConfig& c) {
        return c.radix == 5 ? 97.0 : 100.0;
      });
  EXPECT_EQ(winner.radix, 4);
  EXPECT_TRUE(tuner.learned().empty());
  EXPECT_FALSE(model::tuner_override(query).has_value());
  model::clear_tuner_cache();
}

TEST(AdaptiveTuner, LockedWinnerNeverOscillates) {
  model::clear_tuner_cache();
  tune::AdaptiveTuner tuner(tune::AdaptiveOptions{2, 0.05});
  const model::TunerQuery query = make_query(4096);
  const model::TunerConfig base = incumbent_config();

  const model::TunerConfig winner =
      run_to_lock(tuner, query, base, [](const model::TunerConfig& c) {
        return c.radix == 5 ? 50.0 : 100.0;
      });
  EXPECT_EQ(winner.radix, 5);

  // Adversarial post-lock feedback: the incumbent suddenly looks 100×
  // faster.  A locked key must not flip back.
  for (int i = 0; i < 32; ++i) {
    model::ExecutionSample sample;
    sample.query = query;
    sample.config = base;
    sample.wall_us = 1.0;
    tuner.observe(sample);
    const auto decided = tuner.decide(query, base);
    ASSERT_TRUE(decided.has_value());
    EXPECT_EQ(decided->radix, 5) << "call " << i;
  }
  model::clear_tuner_cache();
}

TEST(AdaptiveTuner, SamplesWithoutPositiveWallTimeAreIgnored) {
  model::clear_tuner_cache();
  tune::AdaptiveTuner tuner(tune::AdaptiveOptions{2, 0.05});
  const model::TunerQuery query = make_query(512);
  const model::TunerConfig base = incumbent_config();
  // All observations carry wall_us = 0 (a clock that never ran): no arm
  // accumulates evidence, so the lock keeps the incumbent.
  const model::TunerConfig winner = run_to_lock(
      tuner, query, base, [](const model::TunerConfig&) { return 0.0; });
  EXPECT_EQ(winner.radix, 4);
  EXPECT_TRUE(tuner.learned().empty());
  model::clear_tuner_cache();
}

TEST(AdaptiveTuner, LockedWinnerPersistsAndReloadsBitwise) {
  model::clear_tuner_cache();
  const std::string path = "/tmp/bruck_tune_adaptive_" +
                           std::to_string(::getpid()) + ".table";
  std::remove(path.c_str());

  tune::AdaptiveTuner tuner(tune::AdaptiveOptions{2, 0.05});
  tuner.set_persist_path(path);
  const model::TunerQuery query = make_query(8192);
  const model::TunerConfig base = incumbent_config();
  // Means with no finite decimal representation: 100/3 vs 200/3.
  const model::TunerConfig winner =
      run_to_lock(tuner, query, base, [](const model::TunerConfig& c) {
        return c.radix == 5 ? 100.0 / 3.0 : 200.0 / 3.0;
      });
  ASSERT_EQ(winner.radix, 5);

  const auto loaded = tune::load_tune_table(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->learned.size(), 1u);
  EXPECT_EQ(loaded->learned[0].query, query);
  EXPECT_TRUE(loaded->learned[0].config == winner);
  EXPECT_EQ(loaded->learned[0].observations, 2);
  // Bitwise: the persisted mean is exactly the accumulated total/count.
  EXPECT_EQ(model::model_bits(loaded->learned[0].mean_wall_us),
            model::model_bits((100.0 / 3.0 + 100.0 / 3.0) / 2.0));
  // And the file itself round-trips byte-identically.
  EXPECT_EQ(serialize_tune_table(*loaded),
            serialize_tune_table(*tune::load_tune_table(path)));
  std::remove(path.c_str());
  model::clear_tuner_cache();
}

// ---------------------------------------------------------------------------
// clear_tuner_cache vs the adaptive override table (the PR's bugfix): stats
// must report overrides, a clear must wipe learned-in-memory state, and a
// file-backed table must survive the clear by reload.

TEST(TunerCacheClear, StatsReportAndClearWipeInMemoryOverrides) {
  model::clear_tuner_cache();
  const model::TunerQuery query = make_query(1 << 14);
  // A 16 KiB block is bandwidth-dominated — the model would never pick
  // radix 3 here, so the override's effect is observable.
  model::TunerConfig cfg;
  cfg.radix = 3;
  model::set_tuner_override(query, cfg);
  EXPECT_EQ(model::tuner_cache_stats().overrides, 1u);

  // An override answers the pick directly and counts as an override hit.
  const model::RadixChoice pick =
      model::pick_index_radix_cached(8, 1, 1 << 14, model::ibm_sp1());
  EXPECT_EQ(pick.radix, 3);
  EXPECT_GE(model::tuner_cache_stats().override_hits, 1u);

  // No table file backs this override: a clear wipes it for good.
  model::clear_tuner_cache();
  EXPECT_EQ(model::tuner_cache_stats().overrides, 0u);
  EXPECT_FALSE(model::tuner_override(query).has_value());
  const model::RadixChoice fresh =
      model::pick_index_radix_cached(8, 1, 1 << 14, model::ibm_sp1());
  EXPECT_EQ(fresh.radix,
            model::pick_index_radix(8, 1, 1 << 14, model::ibm_sp1()).radix);
}

TEST(TunerCacheClear, FileBackedOverridesSurviveTheClear) {
  model::clear_tuner_cache();
  const std::string path = "/tmp/bruck_tune_source_" +
                           std::to_string(::getpid()) + ".table";
  const model::TunerQuery query = make_query(1 << 15);
  tune::TuneTable table;
  tune::LearnedEntry e;
  e.query = query;
  e.config.radix = 6;
  e.observations = 4;
  e.mean_wall_us = 12.5;
  table.learned.push_back(e);
  ASSERT_TRUE(tune::save_tune_table(table, path));

  // Point the reload seam at the file: its entries install now...
  tune::set_tune_table_source(path, "no-such-fabric");
  ASSERT_TRUE(model::tuner_override(query).has_value());
  EXPECT_EQ(model::tuner_override(query)->radix, 6);

  // ...and survive a clear, because the clear re-reads the FILE.
  model::clear_tuner_cache();
  ASSERT_TRUE(model::tuner_override(query).has_value());
  EXPECT_EQ(model::tuner_override(query)->radix, 6);
  EXPECT_EQ(model::tuner_cache_stats().overrides, 1u);

  // Unregister the seam: the next clear has no source to reload from, so
  // the override does NOT survive — the file was the only source of truth.
  tune::set_tune_table_source("", "");
  model::clear_tuner_cache();
  EXPECT_FALSE(model::tuner_override(query).has_value());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// End to end on a real fabric: adaptive mode bootstraps through
// spawn_local, the facade's hot path feeds wall times back, and the global
// tuner locks a winner (which winner is host-dependent; that a lock lands
// and the table records the calibrated machine is not).

TEST(AdaptiveEndToEnd, ThreadFabricExploresLocksAndRecordsTheTable) {
  const char* prior_raw = std::getenv("BRUCK_TUNE_TABLE");
  const std::string prior = prior_raw ? prior_raw : "";
  const std::string path = "/tmp/bruck_tune_e2e_" +
                           std::to_string(::getpid()) + ".table";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("BRUCK_TUNE_TABLE", path.c_str(), 1), 0);

  tune::global_adaptive().reset();
  model::clear_tuner_cache();

  mps::SpawnOptions so;
  so.n = 8;
  so.k = 1;
  so.backend = mps::FabricBackend::kThread;
  so.record_trace = false;
  so.tune = tune::TuneMode::kAdaptive;
  const std::int64_t b = 4096;
  mps::spawn_local(so, [b](mps::Communicator& comm) -> std::vector<std::byte> {
    const std::int64_t n = comm.size();
    std::vector<std::byte> send(static_cast<std::size_t>(n * b),
                                std::byte{0x42});
    std::vector<std::byte> recv(send.size());
    int round = 0;
    // Far past any exploration horizon (≤ 5 arms × 4 observations + 1).
    for (int rep = 0; rep < 48; ++rep) {
      coll::AlltoallOptions o;
      o.start_round = round;
      round = coll::alltoall(comm, send, recv, b, o);
    }
    return {};
  });

  // The tuner locked at least the alltoall geometry's key.
  EXPECT_GE(tune::global_adaptive().locked_count(), 1u);
  // Calibration ran and was published...
  ASSERT_TRUE(model::active_machine().has_value());
  EXPECT_GT(model::active_machine()->beta_us, 0.0);
  // ...and rank 0 recorded the measured thread model in the table.
  const auto table = tune::load_tune_table(path);
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->models.count("thread"), 1u);

  // Uninstall everything the bootstrap wired up so later tests (and other
  // suites in this process) see a clean slate.
  tune::set_tune_table_source("", "");
  model::set_adaptive_hook({});
  model::set_observation_hook({});
  model::set_active_machine(std::nullopt);
  model::set_active_two_level(std::nullopt);
  tune::global_adaptive().reset();
  model::clear_tuner_cache();
  std::remove(path.c_str());
  if (prior_raw != nullptr) {
    ASSERT_EQ(setenv("BRUCK_TUNE_TABLE", prior.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("BRUCK_TUNE_TABLE"), 0);
  }
}

}  // namespace
}  // namespace bruck
