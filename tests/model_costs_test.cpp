// The closed-form cost formulas against the paper's claims (Sections 3.2,
// 3.3, 3.4, 4 and the Remark after Theorem 4.3).
#include "model/costs.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "model/lower_bounds.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/radix.hpp"

namespace bruck::model {
namespace {

TEST(IndexBruckCost, RadixTwoIsRoundOptimalOnePort) {
  // Section 3.3 case 1: r = 2 gives C1 = ceil(log2 n), and
  // C2 <= b * ceil(n/2) * ceil(log2 n).
  for (std::int64_t n = 2; n <= 130; ++n) {
    for (std::int64_t b : {1, 4, 64}) {
      const CostMetrics m = index_bruck_cost(n, 2, 1, b);
      EXPECT_EQ(m.c1, ceil_log(n, 2)) << "n=" << n;
      EXPECT_LE(m.c2, b * ceil_div(n, 2) * ceil_log(n, 2)) << "n=" << n;
      EXPECT_EQ(m.c1, index_c1_lower_bound(n, 1)) << "r=2 meets Prop. 2.3";
    }
  }
}

TEST(IndexBruckCost, RadixNIsVolumeOptimal) {
  // Section 3.3 case 2: r = n gives C2 = b(n−1) and C1 = n−1 (one port).
  for (std::int64_t n = 2; n <= 80; ++n) {
    for (std::int64_t b : {1, 3, 16}) {
      const CostMetrics m = index_bruck_cost(n, n, 1, b);
      EXPECT_EQ(m.c1, n - 1) << "n=" << n;
      EXPECT_EQ(m.c2, b * (n - 1)) << "n=" << n;
      EXPECT_EQ(m.c2, index_c2_lower_bound(n, 1, b)) << "meets Prop. 2.4";
      EXPECT_EQ(m.c1, index_c1_bound_at_min_volume(n, 1))
          << "meets Thm. 2.6 exactly";
    }
  }
}

TEST(IndexBruckCost, GeneralBoundsOfSection32) {
  // C1 <= ceil((r−1)/k)·ceil(log_r n) (Section 3.4), and per-round data is
  // bounded by the exact per-message cap b·radix_max_census(n, r) — the
  // paper quotes ⌈n/r⌉, which matches the cap whenever n is a power of r
  // (see util/radix.hpp for the truncated-top-digit discussion).
  for (std::int64_t n : {2, 3, 5, 8, 13, 27, 64, 100}) {
    for (std::int64_t r = 2; r <= n; ++r) {
      for (int k : {1, 2, 3, 4}) {
        const std::int64_t b = 8;
        const CostMetrics m = index_bruck_cost(n, r, k, b);
        const int w = ceil_log(n, r);
        EXPECT_LE(m.c1, ceil_div(r - 1, k) * w)
            << "n=" << n << " r=" << r << " k=" << k;
        EXPECT_LE(m.c2, b * radix_max_census(n, r) * ceil_div(r - 1, k) * w);
        if (ipow(r, w) == n) {
          EXPECT_LE(m.c2, b * ceil_div(n, r) * ceil_div(r - 1, k) * w)
              << "paper's Section 3.2 bound must hold for n = r^w";
        }
        // Lower bounds always hold.
        EXPECT_GE(m.c1, index_c1_lower_bound(n, k));
        EXPECT_GE(m.c2, index_c2_lower_bound(n, k, b));
      }
    }
  }
}

TEST(IndexBruckCost, MinimalRoundsCaseMatchesTheorem25Shape) {
  // When n = (k+1)^d and r = k+1, C1 = d (minimal) and the algorithm's C2
  // stays within a factor ~(k+1)/k of the Theorem 2.5 lower bound for
  // round-minimal algorithms.
  struct Case {
    std::int64_t n;
    int k;
  };
  for (const auto& [n, k] : {Case{8, 1}, Case{27, 2}, Case{64, 3}, Case{64, 1},
                             Case{81, 2}, Case{125, 4}}) {
    const std::int64_t b = 4;
    const CostMetrics m = index_bruck_cost(n, k + 1, k, b);
    const int d = ceil_log(n, k + 1);
    EXPECT_EQ(m.c1, d) << "n=" << n << " k=" << k;
    const std::int64_t lb = index_c2_bound_at_min_rounds(n, k, b);
    EXPECT_GE(m.c2, lb);
    // C2 = b·(n/(k+1))·... within small constant of lb: the algorithm sends
    // ceil(n/(k+1)) blocks per round over d·k steps, max per round is the
    // step max; sanity-bound by 2·(k+1)/k times the lower bound.
    EXPECT_LE(m.c2 * k, 2 * (k + 1) * lb) << "n=" << n << " k=" << k;
  }
}

TEST(IndexBruckCost, PortAlignedRadixBeatsMisaligned) {
  // Section 3.4: choosing (r−1) mod k == 0 avoids wasted port slots; with
  // n = 64, k = 3, radix 4 (aligned) needs fewer rounds than radix 5.
  const CostMetrics aligned = index_bruck_cost(64, 4, 3, 1);
  const CostMetrics misaligned = index_bruck_cost(64, 5, 3, 1);
  EXPECT_EQ(aligned.c1, 3);  // ceil(3/3)·log_4 64 = 3
  EXPECT_LE(aligned.c1, misaligned.c1);
}

TEST(IndexBruckCost, DegenerateCases) {
  EXPECT_EQ(index_bruck_cost(1, 2, 1, 8), CostMetrics{});
  const CostMetrics m = index_bruck_cost(2, 2, 1, 8);
  EXPECT_EQ(m.c1, 1);
  EXPECT_EQ(m.c2, 8);
  EXPECT_EQ(m.total_bytes, 16);
  EXPECT_THROW((void)index_bruck_cost(4, 1, 1, 8), ContractViolation);
  EXPECT_THROW((void)index_bruck_cost(4, 5, 1, 8), ContractViolation);
  EXPECT_NO_THROW((void)index_bruck_cost(1, 2, 1, 8));
}

TEST(IndexDirectCost, Formulas) {
  for (std::int64_t n : {2, 5, 9, 64}) {
    for (int k : {1, 2, 3}) {
      const CostMetrics m = index_direct_cost(n, k, 10);
      EXPECT_EQ(m.c1, ceil_div(n - 1, k));
      EXPECT_EQ(m.c2, 10 * m.c1);
      EXPECT_EQ(m.max_rank_sent, 10 * (n - 1));
      EXPECT_EQ(m.total_bytes, 10 * n * (n - 1));
    }
  }
}

TEST(IndexPairwiseCost, MatchesDirectForPowersOfTwo) {
  for (std::int64_t n : {2, 4, 8, 32}) {
    for (int k : {1, 2}) {
      EXPECT_EQ(index_pairwise_cost(n, k, 6), index_direct_cost(n, k, 6));
    }
  }
  EXPECT_THROW((void)index_pairwise_cost(6, 1, 1), ContractViolation);
}

TEST(ConcatBruckCost, OptimalInBothMeasuresOutsideNonoptimalRange) {
  // Theorem 4.3: optimal C1 and C2 for every (n, b, k) outside the stated
  // range (using kAuto, which picks byte-split whenever feasible).
  for (std::int64_t n = 2; n <= 120; ++n) {
    for (int k = 1; k <= 5; ++k) {
      for (std::int64_t b = 1; b <= 5; ++b) {
        if (concat_paper_nonoptimal_range(n, k, b)) continue;
        ASSERT_TRUE(concat_byte_split_feasible(n, k, b))
            << "paper: straightforward partition works outside the range; "
            << "n=" << n << " k=" << k << " b=" << b;
        const CostMetrics m =
            concat_bruck_cost(n, k, b, ConcatLastRound::kAuto);
        EXPECT_EQ(m.c1, concat_c1_lower_bound(n, k))
            << "n=" << n << " k=" << k << " b=" << b;
        EXPECT_EQ(m.c2, concat_c2_lower_bound(n, k, b))
            << "n=" << n << " k=" << k << " b=" << b;
      }
    }
  }
}

TEST(ConcatBruckCost, NonoptimalRangeFallbacksMatchTheRemark) {
  // Inside the non-optimal range: column-granular keeps C1 optimal with
  // C2 at most (b−1) over the bound; two-round keeps C2 optimal with
  // C1 = bound + 1 whenever n2 > k.  (In the d = 1 corner of the range —
  // n < k+1, more ports than peers — kTwoRound degenerates to a single
  // column-granular round; see DESIGN.md §8.)
  int cases = 0;
  int two_round_cases = 0;
  for (std::int64_t n = 2; n <= 300; ++n) {
    for (int k = 3; k <= 6; ++k) {
      for (std::int64_t b = 3; b <= 6; ++b) {
        if (!concat_paper_nonoptimal_range(n, k, b)) continue;
        ++cases;
        const CostMetrics cg =
            concat_bruck_cost(n, k, b, ConcatLastRound::kColumnGranular);
        EXPECT_EQ(cg.c1, concat_c1_lower_bound(n, k));
        EXPECT_GE(cg.c2, concat_c2_lower_bound(n, k, b));
        EXPECT_LE(cg.c2, concat_c2_lower_bound(n, k, b) + b - 1)
            << "n=" << n << " k=" << k << " b=" << b;
        const CostMetrics tr =
            concat_bruck_cost(n, k, b, ConcatLastRound::kTwoRound);
        const int d = ceil_log(n, k + 1);
        const std::int64_t n2 = n - ipow(k + 1, d - 1);
        if (n2 > k) {
          ++two_round_cases;
          EXPECT_EQ(tr.c1, concat_c1_lower_bound(n, k) + 1);
          EXPECT_EQ(tr.c2, concat_c2_lower_bound(n, k, b))
              << "n=" << n << " k=" << k << " b=" << b;
        } else {
          EXPECT_EQ(tr.c1, concat_c1_lower_bound(n, k));
          EXPECT_LE(tr.c2, concat_c2_lower_bound(n, k, b) + b - 1);
        }
      }
    }
  }
  EXPECT_GT(cases, 50) << "the sweep should actually hit the range";
  EXPECT_GT(two_round_cases, 25) << "the sweep should hit the d >= 2 range";
}

TEST(ConcatBruckCost, ByteSplitInfeasibleOnlyInsidePaperRange) {
  // The greedy partition must work everywhere outside the paper's range;
  // inside it, it may or may not (the paper only claims failure is confined
  // to the range).  Check containment over a large grid.
  for (std::int64_t n = 2; n <= 400; ++n) {
    for (int k = 1; k <= 6; ++k) {
      for (std::int64_t b = 1; b <= 7; ++b) {
        if (!concat_byte_split_feasible(n, k, b)) {
          EXPECT_TRUE(concat_paper_nonoptimal_range(n, k, b))
              << "greedy failed outside the paper's range: n=" << n
              << " k=" << k << " b=" << b;
        }
      }
    }
  }
}

TEST(ConcatBruckCost, ExactPowerNeedsNoPartialRound) {
  for (int k = 1; k <= 4; ++k) {
    for (int d = 1; d <= 4; ++d) {
      const std::int64_t n = ipow(k + 1, d);
      if (n > 700) continue;
      const std::int64_t b = 3;
      const CostMetrics m = concat_bruck_cost(n, k, b, ConcatLastRound::kAuto);
      EXPECT_EQ(m.c1, d);
      EXPECT_EQ(m.c2, b * (n - 1) / k);  // (k+1)^d − 1 divisible by k
    }
  }
}

TEST(ConcatBruckCost, ByteSplitThrowsWhenInfeasible) {
  // Find one infeasible instance and check the explicit strategy refuses.
  bool found = false;
  for (std::int64_t n = 2; n <= 300 && !found; ++n) {
    for (int k = 3; k <= 5 && !found; ++k) {
      for (std::int64_t b = 3; b <= 5 && !found; ++b) {
        if (!concat_byte_split_feasible(n, k, b)) {
          found = true;
          EXPECT_THROW((void)concat_bruck_cost(n, k, b, ConcatLastRound::kByteSplit),
                       ContractViolation);
          EXPECT_NO_THROW((void)concat_bruck_cost(n, k, b, ConcatLastRound::kAuto));
        }
      }
    }
  }
  EXPECT_TRUE(found) << "expected at least one infeasible instance";
}

TEST(ConcatFolkloreCost, SuboptimalAsStatedInSection4) {
  // C1 = 2·ceil(log2 n); gather volume is b(2^d − 1)-ish and the broadcast
  // moves the full result per round, so C2 strictly exceeds Bruck's for all
  // n >= 4.
  for (std::int64_t n = 2; n <= 100; ++n) {
    const std::int64_t b = 5;
    const CostMetrics folk = concat_folklore_cost(n, b);
    EXPECT_EQ(folk.c1, 2 * ceil_log(n, 2)) << "n=" << n;
    const CostMetrics bruck = concat_bruck_cost(n, 1, b, ConcatLastRound::kAuto);
    EXPECT_GE(folk.c1, bruck.c1);
    EXPECT_GE(folk.c2, bruck.c2);
    if (n >= 4) {
      EXPECT_GT(folk.c2, bruck.c2) << "n=" << n;
      EXPECT_GT(folk.c1, bruck.c1) << "n=" << n;
    }
  }
}

TEST(ConcatRingCost, VolumeOptimalRoundWorst) {
  for (std::int64_t n = 2; n <= 60; ++n) {
    const std::int64_t b = 7;
    const CostMetrics m = concat_ring_cost(n, b);
    EXPECT_EQ(m.c1, n - 1);
    EXPECT_EQ(m.c2, concat_c2_lower_bound(n, 1, b));
  }
}

TEST(ConcatCost, DegenerateCases) {
  EXPECT_EQ(concat_bruck_cost(1, 1, 8, ConcatLastRound::kAuto), CostMetrics{});
  EXPECT_EQ(concat_folklore_cost(1, 8), CostMetrics{});
  EXPECT_EQ(concat_ring_cost(1, 8), CostMetrics{});
  // n = 2, k = 1, b = 4: single exchange of the whole block.
  const CostMetrics m = concat_bruck_cost(2, 1, 4, ConcatLastRound::kAuto);
  EXPECT_EQ(m.c1, 1);
  EXPECT_EQ(m.c2, 4);
}

TEST(ConcatCost, ManyPortsSingleRound) {
  // k >= n−1: everything in one round, each port carrying at most
  // ceil(b(n−1)/k) bytes.
  for (std::int64_t n = 2; n <= 12; ++n) {
    const int k = static_cast<int>(n) - 1 + 2;  // more ports than peers
    const std::int64_t b = 6;
    const CostMetrics m = concat_bruck_cost(n, k, b, ConcatLastRound::kAuto);
    EXPECT_EQ(m.c1, 1);
    EXPECT_LE(m.c2, b);
  }
}

}  // namespace
}  // namespace bruck::model
