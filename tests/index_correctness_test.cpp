// End-to-end content correctness of the index (alltoall) algorithms on the
// threaded substrate, across n × radix × ports × block-size grids.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "coll/blocks.hpp"
#include "coll/index_bruck.hpp"
#include "coll/index_direct.hpp"
#include "coll/index_pairwise.hpp"
#include "coll/pack.hpp"
#include "test_util.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/radix.hpp"
#include "util/rng.hpp"

namespace bruck {
namespace {

using coll::IndexBruckOptions;
using testutil::run_index;

// ---------------------------------------------------------------------------
// Local phases in isolation.

TEST(Blocks, RotateUpMatchesAppendixALines3And4) {
  // tmp slot x = out block (x + rank) mod n.
  const std::int64_t n = 5, b = 2;
  std::vector<std::byte> src(static_cast<std::size_t>(n * b));
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::byte>(i);
  std::vector<std::byte> dst(src.size());
  coll::rotate_blocks_up(coll::ConstBlockSpan(src, n, b),
                         coll::BlockSpan(dst, n, b), 3);
  for (std::int64_t x = 0; x < n; ++x) {
    for (std::int64_t o = 0; o < b; ++o) {
      EXPECT_EQ(dst[static_cast<std::size_t>(x * b + o)],
                src[static_cast<std::size_t>(pos_mod(x + 3, n) * b + o)]);
    }
  }
}

TEST(Blocks, UnrotateByRankInvertsPhaseOneAfterFullRotation) {
  // If every slot s traveled distance s (what Phase 2 accomplishes), then
  // Phase 3 at rank d recovers: recv block i = value from source i.
  const std::int64_t n = 7, b = 3, rank = 4;
  // Build the post-phase-2 buffer at rank `rank`: slot s holds the block
  // that source (rank − s) addressed to `rank`.
  std::vector<std::byte> tmp(static_cast<std::size_t>(n * b));
  coll::BlockSpan tmp_blocks(tmp, n, b);
  for (std::int64_t s = 0; s < n; ++s) {
    fill_payload(tmp_blocks.block(s), 1, pos_mod(rank - s, n), rank);
  }
  std::vector<std::byte> out(tmp.size());
  coll::unrotate_by_rank(coll::ConstBlockSpan(tmp, n, b),
                         coll::BlockSpan(out, n, b), rank);
  coll::BlockSpan out_blocks(out, n, b);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t o = 0; o < b; ++o) {
      EXPECT_EQ(out_blocks.block(i)[static_cast<std::size_t>(o)],
                payload_byte(1, i, rank, static_cast<std::size_t>(o)));
    }
  }
}

TEST(Pack, PackUnpackRoundTrip) {
  for (std::int64_t n : {1, 2, 5, 8, 13}) {
    for (std::int64_t r : {2, 3, 5}) {
      if (r > std::max<std::int64_t>(2, n)) continue;
      const std::int64_t b = 3;
      std::vector<std::byte> buf(static_cast<std::size_t>(n * b));
      fill_random_bytes(buf, 11);
      const std::vector<std::byte> original = buf;
      const int w = radix_digit_count(n, r);
      for (int x = 0; x < w; ++x) {
        for (std::int64_t z = 1; z < r; ++z) {
          std::vector<std::byte> packed(static_cast<std::size_t>(n * b));
          const std::int64_t cnt =
              coll::pack_by_digit(buf, packed, n, b, r, x, z);
          // Scramble the member slots, then unpack: must restore.
          for (std::int64_t m : radix_digit_members(n, r, x, z)) {
            buf[static_cast<std::size_t>(m * b)] = std::byte{0xFF};
          }
          const std::int64_t cnt2 =
              coll::unpack_by_digit(buf, packed, n, b, r, x, z);
          EXPECT_EQ(cnt, cnt2);
          EXPECT_EQ(buf, original) << "n=" << n << " r=" << r << " x=" << x
                                   << " z=" << z;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Parameterized end-to-end sweeps.

struct BruckCase {
  std::int64_t n;
  std::int64_t radix;
  int k;
  std::int64_t b;
};

class IndexBruckSweep : public ::testing::TestWithParam<BruckCase> {};

TEST_P(IndexBruckSweep, DeliversEveryBlockToItsDestination) {
  const auto [n, radix, k, b] = GetParam();
  const testutil::CollRun run =
      run_index(n, k, b, [&](mps::Communicator& comm,
                             std::span<const std::byte> send,
                             std::span<std::byte> recv) {
        return coll::index_bruck(comm, send, recv, b,
                                 IndexBruckOptions{radix, 0});
      });
  EXPECT_EQ(run.error, "") << "n=" << n << " r=" << radix << " k=" << k
                           << " b=" << b;
}

std::vector<BruckCase> bruck_cases() {
  std::vector<BruckCase> cases;
  std::set<std::tuple<std::int64_t, std::int64_t, int>> seen;
  for (std::int64_t n : {1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 16, 17, 24, 25,
                         27, 31, 32, 33}) {
    for (std::int64_t radix : {std::int64_t{2}, std::int64_t{3},
                               std::int64_t{4}, std::int64_t{7}, n}) {
      if (radix < 2 || radix > std::max<std::int64_t>(2, n)) continue;
      for (int k : {1, 2, 3}) {
        if (!seen.insert({n, radix, k}).second) continue;
        cases.push_back(BruckCase{n, radix, k, 4});
      }
    }
  }
  // Block-size edge cases on a fixed topology.
  for (std::int64_t b : {0, 1, 2, 9, 64}) {
    cases.push_back(BruckCase{6, 2, 1, b});
    cases.push_back(BruckCase{6, 3, 2, b});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, IndexBruckSweep,
                         ::testing::ValuesIn(bruck_cases()),
                         [](const auto& pinfo) {
                           const BruckCase& c = pinfo.param;
                           return "n" + std::to_string(c.n) + "_r" +
                                  std::to_string(c.radix) + "_k" +
                                  std::to_string(c.k) + "_b" +
                                  std::to_string(c.b);
                         });

struct SimpleCase {
  std::int64_t n;
  int k;
  std::int64_t b;
};

class IndexDirectSweep : public ::testing::TestWithParam<SimpleCase> {};

TEST_P(IndexDirectSweep, DeliversEveryBlockToItsDestination) {
  const auto [n, k, b] = GetParam();
  const testutil::CollRun run =
      run_index(n, k, b, [&](mps::Communicator& comm,
                             std::span<const std::byte> send,
                             std::span<std::byte> recv) {
        return coll::index_direct(comm, send, recv, b,
                                  coll::IndexDirectOptions{0});
      });
  EXPECT_EQ(run.error, "");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexDirectSweep,
    ::testing::Values(SimpleCase{1, 1, 4}, SimpleCase{2, 1, 4},
                      SimpleCase{5, 1, 4}, SimpleCase{5, 2, 4},
                      SimpleCase{8, 3, 4}, SimpleCase{13, 2, 1},
                      SimpleCase{16, 4, 8}, SimpleCase{9, 1, 0},
                      SimpleCase{32, 5, 2}),
    [](const auto& pinfo) {
      const SimpleCase& c = pinfo.param;
      return "n" + std::to_string(c.n) + "_k" + std::to_string(c.k) + "_b" +
             std::to_string(c.b);
    });

class IndexPairwiseSweep : public ::testing::TestWithParam<SimpleCase> {};

TEST_P(IndexPairwiseSweep, DeliversEveryBlockToItsDestination) {
  const auto [n, k, b] = GetParam();
  const testutil::CollRun run =
      run_index(n, k, b, [&](mps::Communicator& comm,
                             std::span<const std::byte> send,
                             std::span<std::byte> recv) {
        return coll::index_pairwise(comm, send, recv, b,
                                    coll::IndexPairwiseOptions{0});
      });
  EXPECT_EQ(run.error, "");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexPairwiseSweep,
    ::testing::Values(SimpleCase{1, 1, 4}, SimpleCase{2, 1, 4},
                      SimpleCase{4, 1, 4}, SimpleCase{8, 2, 4},
                      SimpleCase{16, 3, 8}, SimpleCase{32, 1, 2}),
    [](const auto& pinfo) {
      const SimpleCase& c = pinfo.param;
      return "n" + std::to_string(c.n) + "_k" + std::to_string(c.k) + "_b" +
             std::to_string(c.b);
    });

TEST(IndexPairwise, RejectsNonPowerOfTwo) {
  EXPECT_THROW(
      run_index(6, 1, 4,
                [&](mps::Communicator& comm, std::span<const std::byte> send,
                    std::span<std::byte> recv) {
                  return coll::index_pairwise(comm, send, recv, 4, {});
                }),
      ContractViolation);
}

// ---------------------------------------------------------------------------
// Properties.

TEST(IndexProperty, AppliedTwiceIsIdentity) {
  // The index operation is an involution on the n×n block matrix:
  // (B[i,j] → B[j,i]) twice restores the original placement.
  for (std::int64_t n : {2, 5, 8, 12}) {
    const std::int64_t b = 6;
    const std::int64_t radix = std::min<std::int64_t>(3, n);
    std::vector<std::string> errors(static_cast<std::size_t>(n));
    mps::run_spmd(n, 1, [&](mps::Communicator& comm) {
      const std::int64_t rank = comm.rank();
      std::vector<std::byte> original(static_cast<std::size_t>(n * b));
      coll::fill_index_send(original, n, rank, b, 99);
      std::vector<std::byte> once(original.size());
      std::vector<std::byte> twice(original.size());
      int next = coll::index_bruck(comm, original, once, b,
                                   IndexBruckOptions{radix, 0});
      coll::index_bruck(comm, once, twice, b, IndexBruckOptions{radix, next});
      if (twice != original) {
        errors[static_cast<std::size_t>(rank)] = "involution violated";
      }
    });
    for (const std::string& e : errors) EXPECT_EQ(e, "") << "n=" << n;
  }
}

TEST(IndexProperty, AllAlgorithmsProduceIdenticalOutput) {
  for (std::int64_t n : {4, 8, 16}) {
    const std::int64_t b = 5;
    std::vector<int> mismatches(static_cast<std::size_t>(n), 0);
    mps::run_spmd(n, 2, [&](mps::Communicator& comm) {
      const std::int64_t rank = comm.rank();
      std::vector<std::byte> send(static_cast<std::size_t>(n * b));
      coll::fill_index_send(send, n, rank, b, 5);
      std::vector<std::byte> a(send.size()), c(send.size()), d(send.size());
      int next = coll::index_bruck(comm, send, a, b, IndexBruckOptions{2, 0});
      next = coll::index_direct(comm, send, c, b,
                                coll::IndexDirectOptions{next});
      coll::index_pairwise(comm, send, d, b,
                           coll::IndexPairwiseOptions{next});
      if (a != c || a != d) mismatches[static_cast<std::size_t>(rank)] = 1;
    });
    for (int m : mismatches) EXPECT_EQ(m, 0) << "n=" << n;
  }
}

TEST(IndexBruck, RejectsBadRadix) {
  EXPECT_THROW(
      run_index(4, 1, 4,
                [&](mps::Communicator& comm, std::span<const std::byte> send,
                    std::span<std::byte> recv) {
                  return coll::index_bruck(comm, send, recv, 4,
                                           IndexBruckOptions{1, 0});
                }),
      ContractViolation);
  EXPECT_THROW(
      run_index(4, 1, 4,
                [&](mps::Communicator& comm, std::span<const std::byte> send,
                    std::span<std::byte> recv) {
                  return coll::index_bruck(comm, send, recv, 4,
                                           IndexBruckOptions{5, 0});
                }),
      ContractViolation);
}

TEST(IndexBruck, StartRoundOffsetsTrace) {
  const testutil::CollRun run = run_index(
      4, 1, 2,
      [&](mps::Communicator& comm, std::span<const std::byte> send,
          std::span<std::byte> recv) {
        // Begin at round 3; the trace must still validate (rounds 0..2 would
        // be empty, so the algorithm must be the only round user).
        std::vector<std::byte> warm_out(1, std::byte{1});
        std::vector<std::byte> warm_in(1);
        const std::int64_t peer = comm.rank() ^ 1;
        comm.send_and_recv(0, warm_out, peer, warm_in, peer);
        comm.send_and_recv(1, warm_out, peer, warm_in, peer);
        comm.send_and_recv(2, warm_out, peer, warm_in, peer);
        return coll::index_bruck(comm, send, recv, 2, IndexBruckOptions{2, 3});
      });
  EXPECT_EQ(run.error, "");
  EXPECT_EQ(run.rounds_used, 3 + 2);  // 3 warm-up + ceil(log2 4) rounds
}

}  // namespace
}  // namespace bruck
