// Section 2's lower bounds: closed forms, the reduction between the two
// operations, and consistency with the algorithms' achieved measures.
#include "model/lower_bounds.hpp"

#include <gtest/gtest.h>

#include "model/costs.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::model {
namespace {

TEST(LowerBounds, Proposition21RoundBound) {
  EXPECT_EQ(concat_c1_lower_bound(1, 1), 0);
  EXPECT_EQ(concat_c1_lower_bound(2, 1), 1);
  EXPECT_EQ(concat_c1_lower_bound(64, 1), 6);
  EXPECT_EQ(concat_c1_lower_bound(65, 1), 7);
  EXPECT_EQ(concat_c1_lower_bound(9, 2), 2);   // 3^2 = 9
  EXPECT_EQ(concat_c1_lower_bound(10, 2), 3);
  EXPECT_EQ(concat_c1_lower_bound(64, 3), 3);  // 4^3 = 64
}

TEST(LowerBounds, Proposition22VolumeBound) {
  EXPECT_EQ(concat_c2_lower_bound(5, 1, 10), 40);
  EXPECT_EQ(concat_c2_lower_bound(5, 2, 10), 20);
  EXPECT_EQ(concat_c2_lower_bound(5, 3, 10), 14);  // ceil(40/3)
  EXPECT_EQ(concat_c2_lower_bound(1, 1, 10), 0);
}

TEST(LowerBounds, IndexReducesToConcat) {
  // Propositions 2.3/2.4 prove the index bounds via reduction; the functions
  // must agree everywhere.
  for (std::int64_t n = 1; n <= 66; ++n) {
    for (int k = 1; k <= 4; ++k) {
      EXPECT_EQ(index_c1_lower_bound(n, k), concat_c1_lower_bound(n, k));
      EXPECT_EQ(index_c2_lower_bound(n, k, 7), concat_c2_lower_bound(n, k, 7));
    }
  }
}

TEST(LowerBounds, Theorem25ExactPowerFormula) {
  // C2 >= (b·n/(k+1))·log_{k+1} n for n = (k+1)^d.
  EXPECT_EQ(index_c2_bound_at_min_rounds(8, 1, 1), 12);    // 8/2·3
  EXPECT_EQ(index_c2_bound_at_min_rounds(64, 1, 1), 192);  // 64/2·6
  EXPECT_EQ(index_c2_bound_at_min_rounds(9, 2, 1), 6);     // 9/3·2
  EXPECT_EQ(index_c2_bound_at_min_rounds(64, 3, 2), 96);   // 2·64/4·3
  EXPECT_THROW((void)index_c2_bound_at_min_rounds(10, 1, 1), ContractViolation);
}

TEST(LowerBounds, Theorem25IsTightForTheBruckAlgorithm) {
  // The r = k+1 Bruck algorithm meets the Theorem 2.5 bound with equality
  // when n is an exact power of k+1 — the compound trade-off is real.
  struct Case {
    std::int64_t n;
    int k;
  };
  for (const auto& [n, k] :
       {Case{4, 1}, Case{8, 1}, Case{64, 1}, Case{9, 2}, Case{27, 2},
        Case{16, 3}, Case{64, 3}, Case{25, 4}}) {
    for (std::int64_t b : {1, 5}) {
      const CostMetrics m = index_bruck_cost(n, k + 1, k, b);
      EXPECT_EQ(m.c1, index_c1_lower_bound(n, k));
      EXPECT_EQ(m.c2, index_c2_bound_at_min_rounds(n, k, b))
          << "n=" << n << " k=" << k << " b=" << b;
    }
  }
}

TEST(LowerBounds, Theorem26VolumeOptimalNeedsLinearRounds) {
  EXPECT_EQ(index_c1_bound_at_min_volume(64, 1), 63);
  EXPECT_EQ(index_c1_bound_at_min_volume(64, 3), 21);
  EXPECT_EQ(index_c1_bound_at_min_volume(1, 2), 0);
}

TEST(LowerBounds, CompoundOrdersArePositiveAndMonotone) {
  double prev = 0.0;
  for (std::int64_t n = 2; n <= 128; n *= 2) {
    const double v = index_c2_compound_order(n, 1, 4);
    EXPECT_GT(v, prev);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(index_c2_compound_order(1, 1, 4), 0.0);
  EXPECT_DOUBLE_EQ(index_c2_logn_rounds_order(1, 4), 0.0);
  EXPECT_NEAR(index_c2_logn_rounds_order(64, 1), 64.0 * 6.0, 1e-9);
}

TEST(LowerBounds, EveryAlgorithmRespectsStandaloneBounds) {
  for (std::int64_t n = 1; n <= 40; ++n) {
    for (int k = 1; k <= 3; ++k) {
      const std::int64_t b = 3;
      for (std::int64_t r = 2; r <= std::max<std::int64_t>(2, n); ++r) {
        const CostMetrics m = index_bruck_cost(n, r, k, b);
        EXPECT_GE(m.c1, index_c1_lower_bound(n, k));
        EXPECT_GE(m.c2, index_c2_lower_bound(n, k, b));
      }
      const CostMetrics dir = index_direct_cost(n, k, b);
      EXPECT_GE(dir.c1, index_c1_lower_bound(n, k));
      EXPECT_GE(dir.c2, index_c2_lower_bound(n, k, b));
      for (auto strat : {ConcatLastRound::kAuto, ConcatLastRound::kTwoRound,
                         ConcatLastRound::kColumnGranular}) {
        const CostMetrics c = concat_bruck_cost(n, k, b, strat);
        EXPECT_GE(c.c1, concat_c1_lower_bound(n, k));
        EXPECT_GE(c.c2, concat_c2_lower_bound(n, k, b));
      }
    }
    const CostMetrics folk = concat_folklore_cost(n, 3);
    EXPECT_GE(folk.c1, concat_c1_lower_bound(n, 1));
    EXPECT_GE(folk.c2, concat_c2_lower_bound(n, 1, 3));
    const CostMetrics ring = concat_ring_cost(n, 3);
    EXPECT_GE(ring.c1, concat_c1_lower_bound(n, 1));
    EXPECT_GE(ring.c2, concat_c2_lower_bound(n, 1, 3));
  }
}

TEST(LowerBounds, Theorem27CompoundShapeForGeneralN) {
  // Theorem 2.7: any algorithm using the minimal ⌈log_{k+1} n⌉ rounds must
  // move Ω(n·b·log_{k+1}(n)/(k+1)) units.  The r = k+1 Bruck algorithm is
  // round-minimal for EVERY n (not just powers); its C2 must track the
  // Ω-form within constant factors across a dense sweep.
  for (std::int64_t n = 4; n <= 150; ++n) {
    for (int k : {1, 2, 3}) {
      const std::int64_t b = 4;
      const CostMetrics m = index_bruck_cost(n, k + 1, k, b);
      ASSERT_EQ(m.c1, index_c1_lower_bound(n, k)) << "round-minimal for all n";
      const double order = index_c2_compound_order(n, k, b);
      EXPECT_GE(static_cast<double>(m.c2), 0.4 * order)
          << "n=" << n << " k=" << k;
      EXPECT_LE(static_cast<double>(m.c2), 2.5 * order)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(LowerBounds, OnePortLogRoundsTheorem29Shape) {
  // Theorem 2.9: with C1 = O(log n) at k = 1, C2 = Ω(bn log n).  The r = 2
  // algorithm has C1 = ceil(log2 n) and its C2 is within a constant factor
  // (≈1/2 .. 1) of b·n·log2(n) — consistent with the theorem's order.
  for (std::int64_t n : {8, 16, 64, 128, 256}) {
    const std::int64_t b = 2;
    const CostMetrics m = index_bruck_cost(n, 2, 1, b);
    const double order = index_c2_logn_rounds_order(n, b);
    EXPECT_GE(static_cast<double>(m.c2), 0.45 * order) << "n=" << n;
    EXPECT_LE(static_cast<double>(m.c2), 1.05 * order) << "n=" << n;
  }
}

}  // namespace
}  // namespace bruck::model
