#include "util/math.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/assert.hpp"

namespace bruck {
namespace {

TEST(CeilDiv, ExactAndInexact) {
  EXPECT_EQ(ceil_div(0, 1), 0);
  EXPECT_EQ(ceil_div(1, 1), 1);
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(14, 5), 3);
  EXPECT_EQ(ceil_div(15, 5), 3);
}

TEST(CeilDiv, RejectsBadArguments) {
  EXPECT_THROW((void)ceil_div(-1, 2), ContractViolation);
  EXPECT_THROW((void)ceil_div(1, 0), ContractViolation);
  EXPECT_THROW((void)ceil_div(1, -3), ContractViolation);
}

TEST(Ipow, SmallValues) {
  EXPECT_EQ(ipow(2, 0), 1);
  EXPECT_EQ(ipow(2, 10), 1024);
  EXPECT_EQ(ipow(3, 4), 81);
  EXPECT_EQ(ipow(1, 62), 1);
  EXPECT_EQ(ipow(0, 0), 1);
  EXPECT_EQ(ipow(0, 5), 0);
  EXPECT_EQ(ipow(10, 18), 1000000000000000000LL);
}

TEST(Ipow, DetectsOverflow) {
  EXPECT_THROW((void)ipow(2, 63), ContractViolation);
  EXPECT_THROW((void)ipow(10, 19), ContractViolation);
}

TEST(CeilLog, MatchesDefinition) {
  // ceil_log(x, b) is the least w with b^w >= x.
  EXPECT_EQ(ceil_log(1, 2), 0);
  EXPECT_EQ(ceil_log(2, 2), 1);
  EXPECT_EQ(ceil_log(3, 2), 2);
  EXPECT_EQ(ceil_log(4, 2), 2);
  EXPECT_EQ(ceil_log(5, 2), 3);
  EXPECT_EQ(ceil_log(64, 2), 6);
  EXPECT_EQ(ceil_log(65, 2), 7);
  EXPECT_EQ(ceil_log(9, 3), 2);
  EXPECT_EQ(ceil_log(10, 3), 3);
  EXPECT_EQ(ceil_log(1, 7), 0);
}

TEST(CeilLog, ExhaustiveAgainstIpow) {
  for (std::int64_t base = 2; base <= 7; ++base) {
    for (std::int64_t x = 1; x <= 1000; ++x) {
      const int w = ceil_log(x, base);
      EXPECT_GE(ipow(base, w), x) << "x=" << x << " base=" << base;
      if (w > 0) {
        EXPECT_LT(ipow(base, w - 1), x) << "x=" << x << " base=" << base;
      }
    }
  }
}

TEST(FloorLog, MatchesDefinition) {
  EXPECT_EQ(floor_log(1, 2), 0);
  EXPECT_EQ(floor_log(2, 2), 1);
  EXPECT_EQ(floor_log(3, 2), 1);
  EXPECT_EQ(floor_log(4, 2), 2);
  EXPECT_EQ(floor_log(80, 3), 3);
  EXPECT_EQ(floor_log(81, 3), 4);
}

TEST(FloorLog, ExhaustiveAgainstIpow) {
  for (std::int64_t base = 2; base <= 5; ++base) {
    for (std::int64_t x = 1; x <= 500; ++x) {
      const int w = floor_log(x, base);
      EXPECT_LE(ipow(base, w), x);
      EXPECT_GT(ipow(base, w + 1), x);
    }
  }
}

TEST(IsPow2, Classification) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_TRUE(is_pow2(std::int64_t{1} << 62));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_FALSE(is_pow2(1023));
  EXPECT_THROW((void)is_pow2(0), ContractViolation);
}

TEST(PosMod, NegativeArguments) {
  EXPECT_EQ(pos_mod(5, 3), 2);
  EXPECT_EQ(pos_mod(-1, 3), 2);
  EXPECT_EQ(pos_mod(-3, 3), 0);
  EXPECT_EQ(pos_mod(-7, 5), 3);
  EXPECT_EQ(pos_mod(0, 7), 0);
  EXPECT_THROW((void)pos_mod(1, 0), ContractViolation);
}

TEST(PosMod, AlwaysInRange) {
  for (std::int64_t x = -50; x <= 50; ++x) {
    for (std::int64_t m = 1; m <= 12; ++m) {
      const std::int64_t r = pos_mod(x, m);
      EXPECT_GE(r, 0);
      EXPECT_LT(r, m);
      EXPECT_EQ(pos_mod(r - x, m), 0);
    }
  }
}

}  // namespace
}  // namespace bruck
