// The multiport message-passing substrate: mailboxes, the threaded
// communicator, trace aggregation, and failure behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <vector>

#include "mps/mailbox.hpp"
#include "mps/runtime.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace bruck::mps {
namespace {

using namespace std::chrono_literals;

std::vector<std::byte> bytes_of(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(Mailbox, FifoPerSource) {
  Mailbox box;
  Message m1;
  m1.src = 3;
  m1.seq = 0;
  m1.payload = bytes_of({1});
  Message m2 = m1;
  m2.seq = 1;
  m2.payload = bytes_of({2});
  box.push(m1);
  box.push(m2);
  EXPECT_EQ(box.pending(), 2u);
  EXPECT_EQ(box.pop_from(3, 1000ms).payload, bytes_of({1}));
  EXPECT_EQ(box.pop_from(3, 1000ms).payload, bytes_of({2}));
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, SelectsBySource) {
  Mailbox box;
  Message a;
  a.src = 1;
  a.payload = bytes_of({10});
  Message b;
  b.src = 2;
  b.payload = bytes_of({20});
  box.push(a);
  box.push(b);
  EXPECT_EQ(box.pop_from(2, 1000ms).payload, bytes_of({20}));
  EXPECT_EQ(box.pop_from(1, 1000ms).payload, bytes_of({10}));
}

TEST(Mailbox, PendingBytesTracksQueuedPayloads) {
  Mailbox box;
  Message a;
  a.src = 1;
  a.payload = bytes_of({1, 2, 3});
  Message b;
  b.src = 2;
  b.payload = bytes_of({4, 5});
  box.push(std::move(a));
  box.push(std::move(b));
  EXPECT_EQ(box.pending(), 2u);
  EXPECT_EQ(box.pending_bytes(), 5u);
  (void)box.pop_from(1, 1000ms);
  EXPECT_EQ(box.pending_bytes(), 2u);
  (void)box.pop_from(2, 1000ms);
  EXPECT_EQ(box.pending_bytes(), 0u);
}

TEST(Mailbox, TryPopAnySelectsAmongSourcesWithoutBlocking) {
  Mailbox box;
  EXPECT_FALSE(box.try_pop_any(std::vector<std::int64_t>{1, 2}).has_value());
  Message m;
  m.src = 2;
  m.payload = bytes_of({7});
  box.push(std::move(m));
  // Source 2 has a message but is outside the requested set.
  EXPECT_FALSE(box.try_pop_any(std::vector<std::int64_t>{1, 3}).has_value());
  const auto got = box.try_pop_any(std::vector<std::int64_t>{1, 2});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, 2);
  EXPECT_EQ(got->payload, bytes_of({7}));
}

TEST(Mailbox, PopAnyTimesOutWithEmptyOptional) {
  Mailbox box;
  EXPECT_FALSE(box.pop_any(std::vector<std::int64_t>{4}, 50ms).has_value());
}

TEST(Mailbox, MovesPayloadBuffersEndToEnd) {
  // push/pop never copy the payload: the buffer that goes in is the buffer
  // that comes out.
  Mailbox box;
  Message m;
  m.src = 5;
  m.payload = bytes_of({1, 2, 3, 4});
  const std::byte* data = m.payload.data();
  box.push(std::move(m));
  const Message out = box.pop_from(5, 1000ms);
  EXPECT_EQ(out.payload.data(), data);
}

TEST(Mailbox, TimeoutThrowsDiagnostic) {
  Mailbox box;
  try {
    (void)box.pop_from(7, 50ms);
    FAIL() << "expected timeout";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
  }
}

TEST(Runtime, PingPongDeliversPayload) {
  const std::vector<std::byte> ping = bytes_of({1, 2, 3});
  const std::vector<std::byte> pong = bytes_of({9, 8});
  run_spmd(2, 1, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> in(2);
      comm.send_and_recv(0, ping, 1, in, 1);
      BRUCK_ENSURE(in == pong);
    } else {
      std::vector<std::byte> in(3);
      comm.send_and_recv(0, pong, 0, in, 0);
      BRUCK_ENSURE(in == ping);
    }
  });
}

TEST(Runtime, TraceRecordsRoundsAndBytes) {
  RunResult rr = run_spmd(3, 1, [&](Communicator& comm) {
    const std::int64_t me = comm.rank();
    std::vector<std::byte> out(static_cast<std::size_t>(me + 1),
                               std::byte{0xAB});
    std::vector<std::byte> in(
        static_cast<std::size_t>(pos_mod(me - 1, 3) + 1));
    comm.send_and_recv(0, out, pos_mod(me + 1, 3), in, pos_mod(me - 1, 3));
  });
  const model::CostMetrics m = rr.trace->metrics();
  EXPECT_EQ(m.c1, 1);
  EXPECT_EQ(m.c2, 3);  // largest message in the single round
  EXPECT_EQ(m.total_bytes, 1 + 2 + 3);
  const sched::Schedule s = rr.trace->to_schedule();
  EXPECT_EQ(s.round_count(), 1u);
  EXPECT_EQ(s.rounds()[0].transfers.size(), 3u);
}

TEST(Runtime, MultiPortExchange) {
  // Rank r sends one message to every other rank in a single round (k = 3,
  // n = 4); everything must land, and the trace must validate.
  const std::int64_t n = 4;
  RunResult rr = run_spmd(n, 3, [&](Communicator& comm) {
    const std::int64_t me = comm.rank();
    std::vector<std::vector<std::byte>> outs;
    std::vector<std::vector<std::byte>> ins(3, std::vector<std::byte>(4));
    std::vector<SendSpec> sends;
    std::vector<RecvSpec> recvs;
    int slot = 0;
    for (std::int64_t peer = 0; peer < n; ++peer) {
      if (peer == me) continue;
      outs.push_back(std::vector<std::byte>(4, static_cast<std::byte>(me)));
      sends.push_back(SendSpec{peer, outs.back()});
      recvs.push_back(RecvSpec{peer, ins[static_cast<std::size_t>(slot++)]});
    }
    comm.exchange(0, sends, recvs);
    slot = 0;
    for (std::int64_t peer = 0; peer < n; ++peer) {
      if (peer == me) continue;
      for (std::byte v : ins[static_cast<std::size_t>(slot)]) {
        BRUCK_ENSURE(v == static_cast<std::byte>(peer));
      }
      ++slot;
    }
  });
  const model::CostMetrics m = rr.trace->metrics();
  EXPECT_EQ(m.c1, 1);
  EXPECT_EQ(m.c2, 4);
  EXPECT_EQ(m.total_bytes, n * (n - 1) * 4);
}

TEST(Runtime, RejectsTooManySendsForPorts) {
  EXPECT_THROW(
      run_spmd(3, 1,
               [&](Communicator& comm) {
                 if (comm.rank() != 0) {
                   // Rank 1 and 2 wait for nothing; rank 0 violates ports.
                   return;
                 }
                 std::vector<std::byte> a(1), b(1);
                 const SendSpec sends[2] = {{1, a}, {2, b}};
                 comm.exchange(0, sends, {});
               }),
      ContractViolation);
}

TEST(Runtime, RejectsNonMonotoneRounds) {
  EXPECT_THROW(run_spmd(2, 1,
                        [&](Communicator& comm) {
                          std::vector<std::byte> a(1);
                          std::vector<std::byte> in(1);
                          const std::int64_t peer = 1 - comm.rank();
                          comm.send_and_recv(1, a, peer, in, peer);
                          comm.send_and_recv(1, a, peer, in, peer);  // reused
                        }),
               ContractViolation);
}

TEST(Runtime, RejectsSelfSend) {
  EXPECT_THROW(run_spmd(2, 1,
                        [&](Communicator& comm) {
                          std::vector<std::byte> a(1);
                          std::vector<std::byte> in(1);
                          comm.send_and_recv(0, a, comm.rank(), in,
                                             comm.rank());
                        }),
               ContractViolation);
}

TEST(Runtime, SizeMismatchIsDiagnosed) {
  FabricOptions options;
  options.n = 2;
  options.k = 1;
  options.recv_timeout = 2000ms;
  try {
    run_spmd(options, [&](Communicator& comm) {
      std::vector<std::byte> out(3);
      std::vector<std::byte> in(comm.rank() == 0 ? 3 : 5);  // rank 1 lies
      const std::int64_t peer = 1 - comm.rank();
      comm.send_and_recv(0, out, peer, in, peer);
    });
    FAIL() << "expected mismatch";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("bytes (expected"), std::string::npos)
        << e.what();
  }
}

TEST(Runtime, DeadlockTimesOutInsteadOfHanging) {
  FabricOptions options;
  options.n = 2;
  options.k = 1;
  options.recv_timeout = 100ms;
  EXPECT_THROW(run_spmd(options,
                        [&](Communicator& comm) {
                          // Both ranks receive, nobody sends.
                          std::vector<std::byte> in(1);
                          const RecvSpec r{1 - comm.rank(), in};
                          comm.exchange(0, {}, {&r, 1});
                        }),
               ContractViolation);
}

TEST(Runtime, BarrierSynchronizesAllRanks) {
  const std::int64_t n = 8;
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  run_spmd(n, 1, [&](Communicator& comm) {
    before.fetch_add(1);
    comm.barrier();
    if (before.load() != n) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST(Runtime, ExceptionInOneRankPropagatesAndUnblocksBarrier) {
  FabricOptions options;
  options.n = 4;
  options.k = 1;
  options.recv_timeout = 2000ms;
  EXPECT_THROW(run_spmd(options,
                        [&](Communicator& comm) {
                          if (comm.rank() == 2) {
                            throw ContractViolation("rank 2 gives up");
                          }
                          comm.barrier();
                        }),
               ContractViolation);
}

TEST(Runtime, TraceDisabledRecordsNothing) {
  FabricOptions options;
  options.n = 2;
  options.k = 1;
  options.record_trace = false;
  RunResult rr = run_spmd(options, [&](Communicator& comm) {
    std::vector<std::byte> a(1), in(1);
    const std::int64_t peer = 1 - comm.rank();
    comm.send_and_recv(0, a, peer, in, peer);
  });
  EXPECT_EQ(rr.trace->event_count(), 0u);
}

TEST(Runtime, StressManyRoundsRandomSizes) {
  // 8 ranks, 50 rounds of ring exchanges with pseudo-random message sizes:
  // sequence numbers, sizes and contents must all line up.
  const std::int64_t n = 8;
  const int rounds = 50;
  RunResult rr = run_spmd(n, 1, [&](Communicator& comm) {
    const std::int64_t me = comm.rank();
    for (int t = 0; t < rounds; ++t) {
      // All ranks derive the same size schedule.
      SplitMix64 rng(static_cast<std::uint64_t>(t) * 977);
      const std::size_t len = 1 + rng.next_below(64);
      std::vector<std::byte> out(len, static_cast<std::byte>(me ^ t));
      std::vector<std::byte> in(len);
      comm.send_and_recv(t, out, pos_mod(me + 1, n), in, pos_mod(me - 1, n));
      for (std::byte v : in) {
        BRUCK_ENSURE(v == static_cast<std::byte>(pos_mod(me - 1, n) ^ t));
      }
    }
  });
  const model::CostMetrics m = rr.trace->metrics();
  EXPECT_EQ(m.c1, rounds);
  EXPECT_EQ(rr.trace->event_count(), static_cast<std::size_t>(n * rounds));
}

TEST(Runtime, WallTimeIsMeasured) {
  RunResult rr = run_spmd(2, 1, [&](Communicator& comm) { comm.barrier(); });
  EXPECT_GT(rr.wall_seconds, 0.0);
  EXPECT_LT(rr.wall_seconds, 30.0);
}

// ---------------------------------------------------------------------------
// Port-namespace tags: round monotonicity, port budgets, and wire
// sequencing are all scoped per tag (the substrate of the nonblocking
// collectives' concurrency).

TEST(Runtime, TagNamespacesInterleaveIndependently) {
  // Two tags, each running its own "round 0" with a full port budget, and
  // completed in the opposite order from posting: neither namespace may
  // see the other's rounds, budgets, or sequence numbers.
  run_spmd(2, 1, [&](Communicator& comm) {
    const std::int64_t peer = 1 - comm.rank();
    const int t1 = comm.allocate_collective_tag();
    const int t2 = comm.allocate_collective_tag();
    BRUCK_ENSURE(t1 == 1 && t2 == 2);  // monotonic, never reused

    const std::vector<std::byte> out1 = bytes_of({10, 11});
    const std::vector<std::byte> out2 = bytes_of({20, 21, 22});
    comm.post_send(/*round=*/0, peer, std::span<const std::byte>(out1),
                   /*segments=*/1, t1);
    comm.post_send(/*round=*/0, peer, std::span<const std::byte>(out2),
                   /*segments=*/1, t2);
    std::vector<std::byte> in1(out1.size());
    std::vector<std::byte> in2(out2.size());
    const PortHandle h1 = comm.post_recv(0, peer, in1, 1, t1);
    const PortHandle h2 = comm.post_recv(0, peer, in2, 1, t2);
    comm.wait_recv(h2);  // reverse completion order
    comm.wait_recv(h1);
    BRUCK_ENSURE(in1 == out1);
    BRUCK_ENSURE(in2 == out2);
    comm.release_tag(t1);
    comm.release_tag(t2);
  });
}

TEST(Runtime, EarlyArrivalForUnpostedTagIsStashed) {
  // Rank 0 sends tag 2 *before* tag 1; rank 1 waits on tag 1 first.  The
  // mailbox pops per source, so the tag-2 message surfaces while tag 1
  // drains — it must be stashed and delivered when its receive is finally
  // posted, not dropped or misdelivered.
  run_spmd(2, 1, [&](Communicator& comm) {
    const int t1 = comm.allocate_collective_tag();
    const int t2 = comm.allocate_collective_tag();
    const std::vector<std::byte> first = bytes_of({2, 2, 2});   // tag 2
    const std::vector<std::byte> second = bytes_of({1, 1});     // tag 1
    if (comm.rank() == 0) {
      comm.post_send(0, 1, std::span<const std::byte>(first), 1, t2);
      comm.post_send(0, 1, std::span<const std::byte>(second), 1, t1);
      comm.barrier();
    } else {
      comm.barrier();  // both sends are already in the mailbox
      std::vector<std::byte> in1(second.size());
      const PortHandle h1 = comm.post_recv(0, 0, in1, 1, t1);
      comm.wait_recv(h1);  // pops (and stashes) the earlier tag-2 message
      BRUCK_ENSURE(in1 == second);
      std::vector<std::byte> in2(first.size());
      const PortHandle h2 = comm.post_recv(0, 0, in2, 1, t2);
      BRUCK_ENSURE(comm.test_recv(h2));  // served from the stash: no wait
      BRUCK_ENSURE(in2 == first);
    }
    comm.release_tag(t1);
    comm.release_tag(t2);
  });
}

TEST(Runtime, ReleaseTagResetsNamespaceState) {
  // After release_tag, the tag's round counters and wire sequence numbers
  // are gone: a (hypothetical) fresh user of the same tag value may start
  // again at round 0 without tripping the monotonicity check.
  run_spmd(2, 1, [&](Communicator& comm) {
    const std::int64_t peer = 1 - comm.rank();
    const int tag = comm.allocate_collective_tag();
    const std::vector<std::byte> out = bytes_of({7});
    std::vector<std::byte> in(1);
    comm.post_send(/*round=*/5, peer, std::span<const std::byte>(out), 1, tag);
    comm.wait_recv(comm.post_recv(5, peer, in, 1, tag));
    BRUCK_ENSURE(in == out);
    comm.release_tag(tag);
    comm.barrier();  // both ranks fully drained before the tag is reborn
    comm.post_send(/*round=*/0, peer, std::span<const std::byte>(out), 1, tag);
    comm.wait_recv(comm.post_recv(0, peer, in, 1, tag));
    BRUCK_ENSURE(in == out);
  });
}

}  // namespace
}  // namespace bruck::mps
