// bruckcl_plan — command-line planner for the collectives.
//
//   bruckcl_plan index   <n> <k> <block_bytes> [beta_us] [tau_us_per_byte]
//   bruckcl_plan concat  <n> <k> <block_bytes> [beta_us] [tau_us_per_byte]
//   bruckcl_plan rounds  <n> <k> <block_bytes> <radix>
//   bruckcl_plan compile <n> <k> <block_bytes> [radix]
//   bruckcl_plan compile <n> <k> <counts_file> [radix]
//   bruckcl_plan compile --nonblocking <n> <k> <block_bytes> [radix]
//   bruckcl_plan compile --layout <count,blocklen,stride> <n> <k> <block_bytes> [radix]
//   bruckcl_plan compile --hier <n> <k> <block_bytes> [group]
//   bruckcl_plan calibrate <n> <k>
//
// `index` prints the full radix trade-off curve under the given machine and
// the tuner's pick; `concat` prints the strategy comparison vs the lower
// bounds; `rounds` prints the round-by-round transfer listing of the index
// algorithm (handy for eyeballing patterns); `compile` lowers the compiled
// execution plans the facade's hot path runs (index with the tuned — or
// given — radix, the concat plan, and the reduce-scatter plan under the
// γ-extended model, whose receive messages are tagged "(combine)") and
// prints their anatomy.  With `--nonblocking`, `compile` instead prints the
// *cursor* anatomy those plans drive under the progress engine (the i*
// entry points of coll/api.hpp): per round, when it becomes postable
// relative to earlier rounds' completions, with the tuned wire-segment
// knob resolved exactly like the nonblocking facade.
//
// With `--layout count,blocklen,stride`, `compile` treats both user buffers
// as that strided vector datatype (the coll::Layout the api.hpp overloads
// take): it prints the layout's plan-cache digest, the modeled pack term
// the cost model charges for walking it, and whether its pack cells still
// ride the zero-copy contiguous-run fast path — and keys the lowered plans
// with the digest, exactly like the facade.
//
// With `--hier`, `compile` prints the two-level leader-model lowering: the
// tuner's flat-vs-hierarchical decision under a skewed intra/inter machine
// (shm-like groups over socket-like links), then the per-stage anatomy of
// each family's composite — gather to the leaders, the inter-leader
// exchange, the scatter/broadcast back — for the chosen (or forced) group
// size.
//
// `calibrate` spins up an n-rank fabric of the BRUCK_FABRIC backend, runs
// the tune:: micro-exchange ladder on it, and prints the measured β/τ/γ
// next to the compiled-in machines — then sweeps a sample geometry range
// showing where the measured constants change the tuner's radix pick.
//
// When `compile`'s third argument is a file instead of a number, it is read
// as a whitespace-separated irregular shape: n*n integers make an alltoallv
// count matrix (counts[i*n+j] = bytes rank i sends to rank j), n integers an
// allgatherv per-rank count vector.  The tool then prints the shape's
// statistics, the vector tuner's pick, the shape digest the PlanCache keys
// on, and the irregular plan's anatomy.
//
// Defaults for (beta, tau) are the paper's SP-1 measurements.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "coll/composite.hpp"
#include "coll/layout.hpp"
#include "coll/plan.hpp"
#include "coll/plan_cache.hpp"
#include "model/costs.hpp"
#include "model/linear_model.hpp"
#include "model/lower_bounds.hpp"
#include "model/tuner.hpp"
#include "mps/bootstrap.hpp"
#include "sched/builders_index.hpp"
#include "sched/render.hpp"
#include "tune/calibrate.hpp"
#include "util/table.hpp"

namespace {

int usage() {
  std::cerr << "usage:\n"
            << "  bruckcl_plan index   <n> <k> <block_bytes> [beta_us] [tau_us_per_byte]\n"
            << "  bruckcl_plan concat  <n> <k> <block_bytes> [beta_us] [tau_us_per_byte]\n"
            << "  bruckcl_plan rounds  <n> <k> <block_bytes> <radix>\n"
            << "  bruckcl_plan compile <n> <k> <block_bytes> [radix]\n"
            << "  bruckcl_plan compile <n> <k> <counts_file> [radix]\n"
            << "  bruckcl_plan compile --nonblocking <n> <k> <block_bytes> [radix]\n"
            << "  bruckcl_plan compile --layout <count,blocklen,stride> <n> <k> <block_bytes> [radix]\n"
            << "  bruckcl_plan compile --hier <n> <k> <block_bytes> [group]\n"
            << "  bruckcl_plan calibrate <n> <k>\n"
            << "    counts_file: n*n whitespace-separated integers (alltoallv\n"
            << "    matrix) or n integers (allgatherv per-rank counts)\n"
            << "    --layout: strided user-buffer datatype; count*blocklen\n"
            << "    must equal block_bytes\n";
  return 2;
}

bruck::model::LinearModel machine_from(int argc, char** argv, int beta_idx) {
  bruck::model::LinearModel m = bruck::model::ibm_sp1();
  if (argc > beta_idx) {
    m.name = "custom";
    m.beta_us = std::atof(argv[beta_idx]);
  }
  if (argc > beta_idx + 1) m.tau_us_per_byte = std::atof(argv[beta_idx + 1]);
  return m;
}

int cmd_index(std::int64_t n, int k, std::int64_t b,
              const bruck::model::LinearModel& machine) {
  std::cout << "index operation (alltoall): n = " << n << ", k = " << k
            << ", b = " << b << " bytes; machine \"" << machine.name
            << "\" (beta " << machine.beta_us << " us, tau "
            << machine.tau_us_per_byte << " us/B)\n\n";
  bruck::TextTable t({"radix", "C1", "C2 (bytes)", "modeled us"});
  for (const auto& c : bruck::model::index_radix_curve(n, k, b, machine)) {
    t.add(c.radix, c.metrics.c1, c.metrics.c2, c.predicted_us);
  }
  t.print(std::cout);
  const auto best = bruck::model::pick_index_radix(n, k, b, machine);
  std::cout << "\ntuner pick: r = " << best.radix << " (~" << best.predicted_us
            << " us); lower bounds: C1 >= "
            << bruck::model::index_c1_lower_bound(n, k) << ", C2 >= "
            << bruck::model::index_c2_lower_bound(n, k, b) << " bytes\n";
  return 0;
}

int cmd_concat(std::int64_t n, int k, std::int64_t b,
               const bruck::model::LinearModel& machine) {
  using bruck::model::ConcatLastRound;
  std::cout << "concatenation (allgather): n = " << n << ", k = " << k
            << ", b = " << b << " bytes\n\n";
  bruck::TextTable t({"algorithm", "C1", "C2 (bytes)", "modeled us"});
  auto add = [&](const std::string& name, const bruck::model::CostMetrics& m) {
    t.add(name, m.c1, m.c2, machine.predict_us(m));
  };
  add("bruck (auto)",
      bruck::model::concat_bruck_cost(n, k, b, ConcatLastRound::kAuto));
  add("bruck (two-round)",
      bruck::model::concat_bruck_cost(n, k, b, ConcatLastRound::kTwoRound));
  add("bruck (column-granular)",
      bruck::model::concat_bruck_cost(n, k, b,
                                      ConcatLastRound::kColumnGranular));
  if (k == 1) {
    add("folklore", bruck::model::concat_folklore_cost(n, b));
    add("ring", bruck::model::concat_ring_cost(n, b));
  }
  t.print(std::cout);
  std::cout << "\nlower bounds: C1 >= "
            << bruck::model::concat_c1_lower_bound(n, k) << ", C2 >= "
            << bruck::model::concat_c2_lower_bound(n, k, b) << " bytes";
  if (bruck::model::concat_paper_nonoptimal_range(n, k, b)) {
    std::cout << "  [inside the paper's non-optimal range]";
  }
  std::cout << '\n';
  return 0;
}

int cmd_rounds(std::int64_t n, int k, std::int64_t b, std::int64_t r) {
  const bruck::sched::Schedule s = bruck::sched::build_index_bruck(n, r, k, b);
  std::cout << bruck::sched::render_rounds(s) << '\n'
            << bruck::sched::render_traffic_matrix(s);
  return 0;
}

int cmd_compile(std::int64_t n, int k, std::int64_t b, std::int64_t radix,
                const bruck::coll::Layout* layout) {
  namespace coll = bruck::coll;
  std::uint64_t ld = 0;
  if (layout != nullptr) {
    if (layout->block_bytes() != b) {
      std::cerr << "error: --layout payload (" << layout->block_bytes()
                << " bytes) must equal block_bytes (" << b << ")\n";
      return 1;
    }
    ld = coll::layout_digest(layout, layout);
    std::cout << "layout: " << layout->describe()
              << "; plan-cache digest (contiguity class): 0x" << std::hex << ld
              << std::dec << '\n';
    if (layout->is_contiguous()) {
      std::cout << "pack cells: zero-copy contiguous fast path (digest 0 — "
                   "keys and plans identical to the plain call)\n"
                << "modeled pack term: 0 us (no strided bytes)\n\n";
    } else {
      // Both user buffers of the index exchange walk n blocks of b bytes
      // through the layout's extent map (send pack + receive scatter).
      const std::int64_t strided = 2 * n * b;
      std::cout << "pack cells: strided extent walk (no staging copy; "
                   "extents stream straight between user buffer and wire)\n"
                << "modeled pack term: "
                << bruck::model::layout_pack_us(strided) << " us (" << strided
                << " strided bytes at " << bruck::model::kPackUsPerByte
                << " us/B)\n\n";
    }
  }
  if (radix == 0) {
    const bruck::model::RadixChoice choice =
        bruck::model::pick_index_radix_cached(n, k, b, bruck::model::ibm_sp1());
    radix = choice.radix;
    std::cout << "tuner pick for the index plan: r = " << radix << "\n\n";
  }
  // Go through the cache exactly like the facade, so the stats line shows
  // the real hit/miss machinery.
  coll::PlanCache& cache = coll::PlanCache::global();
  const auto index_lookup = cache.get_or_lower(
      coll::index_plan_key(coll::IndexAlgorithm::kBruck, n, k, radix, 1, ld));
  std::cout << index_lookup.plan->describe() << '\n';

  const bruck::model::ConcatLastRound strategy =
      bruck::model::resolve_concat_last_round(
          n, k, b, bruck::model::ConcatLastRound::kAuto);
  const auto concat_lookup = cache.get_or_lower(coll::concat_plan_key(
      coll::ConcatAlgorithm::kBruck, n, k, strategy, b, 1, ld));
  std::cout << concat_lookup.plan->describe() << '\n';

  // The reduction family: tuned under the γ-extended model (every received
  // byte is also combined), then lowered like the facade's hot path.
  const bruck::model::LinearModel machine = bruck::model::ibm_sp1();
  const bruck::model::ReduceScatterChoice rs =
      bruck::model::pick_reduce_scatter_cached(n, k, b, machine);
  std::cout << "reduce tuner pick (gamma " << machine.gamma_us_per_byte
            << " us/B): "
            << (rs.direct ? "direct exchange"
                          : "bruck, r = " + std::to_string(rs.radix))
            << " (~" << rs.predicted_us << " us modeled)\n";
  const auto reduce_lookup = cache.get_or_lower(coll::reduce_plan_key(
      rs.direct ? coll::ReduceAlgorithm::kDirect : coll::ReduceAlgorithm::kBruck,
      n, k, rs.radix, coll::ReduceOp::sum(coll::ReduceElem::kF64), 1, ld));
  std::cout << reduce_lookup.plan->describe() << '\n';

  const coll::PlanCacheStats stats = cache.stats();
  std::cout << "plan cache: " << stats.entries << " entries, " << stats.hits
            << " hits, " << stats.misses << " misses\n";
  return 0;
}

int cmd_compile_nonblocking(std::int64_t n, int k, std::int64_t b,
                            std::int64_t radix) {
  namespace coll = bruck::coll;
  const bruck::model::LinearModel machine = bruck::model::ibm_sp1();
  if (radix == 0) {
    radix = bruck::model::pick_index_radix_cached(n, k, b, machine).radix;
    std::cout << "tuner pick for the index plan: r = " << radix << "\n\n";
  }
  coll::PlanCache& cache = coll::PlanCache::global();

  // Resolve the wire-segment knob exactly like the nonblocking facade
  // (ialltoall → index plan, iallgather → concat plan, ireduce_scatter →
  // reduce plan), then print each plan's cursor state machine.
  const bruck::model::CostMetrics index_m =
      bruck::model::index_bruck_cost(n, radix, k, b);
  const int index_segments =
      bruck::model::resolve_segment_knob(0, true, machine, index_m);
  const auto index_lookup = cache.get_or_lower(coll::index_plan_key(
      coll::IndexAlgorithm::kBruck, n, k, radix, index_segments));
  std::cout << index_lookup.plan->describe_cursor() << '\n';

  const bruck::model::ConcatLastRound strategy =
      bruck::model::resolve_concat_last_round(
          n, k, b, bruck::model::ConcatLastRound::kAuto);
  const bruck::model::CostMetrics concat_m =
      bruck::model::concat_bruck_cost(n, k, b, strategy);
  const int concat_segments =
      bruck::model::resolve_segment_knob(0, true, machine, concat_m);
  const auto concat_lookup = cache.get_or_lower(coll::concat_plan_key(
      coll::ConcatAlgorithm::kBruck, n, k, strategy, b, concat_segments));
  std::cout << concat_lookup.plan->describe_cursor() << '\n';

  const bruck::model::ReduceScatterChoice rs =
      bruck::model::pick_reduce_scatter_cached(n, k, b, machine);
  const int reduce_segments =
      bruck::model::resolve_segment_knob(0, true, machine, rs.predicted);
  const auto reduce_lookup = cache.get_or_lower(coll::reduce_plan_key(
      rs.direct ? coll::ReduceAlgorithm::kDirect : coll::ReduceAlgorithm::kBruck,
      n, k, rs.radix, coll::ReduceOp::sum(coll::ReduceElem::kF64),
      reduce_segments));
  std::cout << reduce_lookup.plan->describe_cursor() << '\n';

  // What a same-geometry batch of G pending alltoalls would do: the
  // progress engine's fusion break-even under this machine.
  std::cout << "fusion break-even (alltoall, b = " << b << "):\n";
  for (const int group : {2, 4, 8}) {
    bruck::model::CostMetrics fused = index_m;
    fused.c2 *= group;
    fused.total_bytes *= group;
    fused.max_rank_sent *= group;
    fused.max_rank_recv *= group;
    const bruck::model::FusionChoice choice =
        bruck::model::pick_fusion(group, machine, index_m, fused, n * b);
    std::cout << "  G = " << group << ": serial ~" << choice.serial_us
              << " us, fused ~" << choice.fused_us << " us -> "
              << (choice.fuse ? "fuse" : "stay serial") << '\n';
  }
  return 0;
}

int cmd_compile_hier(std::int64_t n, int k, std::int64_t b,
                     std::int64_t group) {
  namespace coll = bruck::coll;
  namespace model = bruck::model;
  const model::TwoLevelModel machine = model::shm_socket_two_level();
  std::cout << "hierarchical (two-level leader-model) lowering: n = " << n
            << ", k = " << k << ", b = " << b << " bytes\n"
            << "machine: intra \"" << machine.intra.name << "\" (beta "
            << machine.intra.beta_us << " us, tau "
            << machine.intra.tau_us_per_byte << " us/B), inter \""
            << machine.inter.name << "\" (beta " << machine.inter.beta_us
            << " us, tau " << machine.inter.tau_us_per_byte << " us/B)\n\n";

  const auto show = [&](const std::string& family,
                        const model::HierChoice& choice,
                        const coll::CompositePlan& cp) {
    std::cout << family << ": flat ~" << choice.flat_us << " us vs hier ~"
              << choice.hier_us << " us -> "
              << (choice.hier ? "hierarchical wins" : "flat wins")
              << " (g = " << choice.group << ", inter r = "
              << choice.inter_radix << ")\n"
              << cp.describe() << '\n';
  };

  const model::HierChoice ci =
      model::pick_index_plan(n, k, b, machine, model::RadixSet::kAll, group);
  coll::HierShape si;
  si.group = ci.group;
  si.inter_radix = ci.inter_radix;
  show("index (alltoall)", ci,
       coll::CompositePlan::lower_index_hier(n, k, /*rank=*/0, b, si));

  const model::HierChoice cc = model::pick_concat_plan(
      n, k, b, machine, model::ConcatLastRound::kAuto, group);
  coll::HierShape sc;
  sc.group = cc.group;
  show("concat (allgather)", cc,
       coll::CompositePlan::lower_concat_hier(n, k, /*rank=*/0, b, sc));

  const model::HierChoice cr =
      model::pick_reduce_plan(n, k, b, machine, model::RadixSet::kAll, group);
  coll::HierShape sr;
  sr.group = cr.group;
  sr.inter_radix = cr.inter_radix;
  show("reduce (reduce-scatter)", cr,
       coll::CompositePlan::lower_reduce_hier(
           n, k, /*rank=*/0, b,
           coll::ReduceOp::sum(coll::ReduceElem::kF64), sr));
  return 0;
}

int cmd_compile_counts(std::int64_t n, int k, const std::string& path,
                       std::int64_t radix) {
  namespace coll = bruck::coll;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open counts file " << path << '\n';
    return 1;
  }
  std::vector<std::int64_t> counts;
  std::int64_t v = 0;
  while (in >> v) {
    if (v < 0) {
      std::cerr << "error: counts must be non-negative\n";
      return 1;
    }
    counts.push_back(v);
  }
  const bool index = static_cast<std::int64_t>(counts.size()) == n * n;
  if (!index && static_cast<std::int64_t>(counts.size()) != n) {
    std::cerr << "error: counts file holds " << counts.size()
              << " values; expected n*n = " << n * n
              << " (alltoallv) or n = " << n << " (allgatherv)\n";
    return 1;
  }

  std::int64_t total = 0;
  std::int64_t max_pair = 0;
  std::int64_t zeros = 0;
  for (const std::int64_t c : counts) {
    total += c;
    max_pair = std::max(max_pair, c);
    if (c == 0) ++zeros;
  }
  const std::uint64_t digest = coll::shape_digest(counts);
  std::cout << (index ? "alltoallv" : "allgatherv") << " shape: n = " << n
            << ", k = " << k << "; total " << total << " bytes, heaviest "
            << (index ? "pair " : "block ") << max_pair << " bytes, " << zeros
            << " empty " << (index ? "pairs" : "blocks")
            << "; max-padding stride " << max_pair << " bytes\n"
            << "shape digest (log2-bucketed): 0x" << std::hex << digest
            << std::dec << "\n\n";

  coll::PlanCache& cache = coll::PlanCache::global();
  if (index) {
    coll::IndexAlgorithm algorithm = coll::IndexAlgorithm::kBruck;
    if (radix == 0) {
      const bruck::model::VectorIndexChoice choice =
          bruck::model::pick_indexv_cached(n, k, total, max_pair,
                                           bruck::model::ibm_sp1());
      algorithm = choice.direct ? coll::IndexAlgorithm::kDirect
                                : coll::IndexAlgorithm::kBruck;
      radix = choice.radix;
      std::cout << "vector tuner pick: "
                << (choice.direct ? "direct exchange"
                                  : "bruck, r = " + std::to_string(radix))
                << " (~" << choice.predicted_us << " us modeled)\n\n";
    }
    const auto lookup = cache.get_or_lower(
        coll::indexv_plan_key(algorithm, n, k, radix, digest));
    std::cout << lookup.plan->describe() << '\n';
  } else {
    const auto lookup = cache.get_or_lower(
        coll::concatv_plan_key(coll::ConcatAlgorithm::kBruck, n, k, digest));
    std::cout << lookup.plan->describe() << '\n';
  }
  const coll::PlanCacheStats stats = cache.stats();
  std::cout << "plan cache: " << stats.entries << " entries, " << stats.hits
            << " hits, " << stats.misses << " misses\n";
  return 0;
}

int cmd_calibrate(std::int64_t n, int k) {
  namespace mps = bruck::mps;
  namespace tune = bruck::tune;
  namespace model = bruck::model;
  const mps::FabricBackend backend = mps::default_fabric_backend();
  const std::string fabric = mps::to_string(backend);
  std::cout << "calibrating fabric \"" << fabric << "\": n = " << n
            << ", k = " << k << " (micro-exchange ladder, 4 sizes)\n\n";

  mps::SpawnOptions so;
  so.n = n;
  so.k = k;
  so.backend = backend;
  so.tune = tune::TuneMode::kOff;  // this command drives calibration itself
  const mps::SpawnResult run =
      mps::spawn_local(so, [&fabric](mps::Communicator& comm) {
        const tune::Calibration cal = tune::calibrate(comm, fabric);
        // Payload: measured flag + the three constants, bit-exact.
        std::vector<std::byte> payload(1 + 3 * sizeof(double));
        payload[0] = cal.measured ? std::byte{1} : std::byte{0};
        const double vals[3] = {cal.machine.beta_us,
                                cal.machine.tau_us_per_byte,
                                cal.machine.gamma_us_per_byte};
        std::memcpy(payload.data() + 1, vals, sizeof(vals));
        return payload;
      });

  const std::vector<std::byte>& p0 = run.rank_payloads.at(0);
  if (p0.size() != 1 + 3 * sizeof(double) || p0[0] != std::byte{1}) {
    std::cout << "calibration skipped (single rank or non-native port "
                 "engine); nothing to report\n";
    return 0;
  }
  double vals[3] = {};
  std::memcpy(vals, p0.data() + 1, sizeof(vals));
  model::LinearModel measured;
  measured.name = fabric;
  measured.beta_us = vals[0];
  measured.tau_us_per_byte = vals[1];
  measured.gamma_us_per_byte = vals[2];

  bruck::TextTable t(
      {"machine", "beta (us)", "tau (us/B)", "gamma (us/B)"});
  const auto add = [&t](const model::LinearModel& m) {
    t.add(m.name, m.beta_us, m.tau_us_per_byte, m.gamma_us_per_byte);
  };
  add(measured);
  add(model::ibm_sp1());
  add(model::startup_dominated());
  add(model::bandwidth_dominated());
  t.print(std::cout);

  // Where the measured constants move the pick: sweep block sizes at this
  // geometry and compare against the compiled-in default machine.
  std::cout << "\nindex-radix picks, measured vs default (n = " << n
            << ", k = " << k << "):\n";
  bruck::TextTable sweep({"block bytes", "default r", "measured r", ""});
  int changes = 0;
  for (std::int64_t b = 16; b <= (1 << 20); b *= 8) {
    const std::int64_t r_default =
        model::pick_index_radix(n, k, b, model::ibm_sp1()).radix;
    const std::int64_t r_measured =
        model::pick_index_radix(n, k, b, measured).radix;
    if (r_measured != r_default) ++changes;
    sweep.add(b, r_default, r_measured,
              r_measured != r_default ? "<- changed" : "");
  }
  sweep.print(std::cout);
  std::cout << "\n" << changes << " pick change(s) across the sweep; wall "
            << run.wall_seconds << " s\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // `calibrate <n> <k>`: needs a live fabric, not a machine argument —
  // dispatched before the generic argc checks.
  if (argc == 4 && std::string(argv[1]) == "calibrate") {
    const std::int64_t n = std::atoll(argv[2]);
    const int k = std::atoi(argv[3]);
    if (n < 1 || k < 1) return usage();
    try {
      return cmd_calibrate(n, k);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 1;
    }
  }
  // `compile --nonblocking ...`: note the flag and parse the rest as usual.
  bool nonblocking = false;
  if (argc >= 3 && std::string(argv[2]) == "--nonblocking") {
    nonblocking = true;
    for (int i = 2; i + 1 < argc; ++i) argv[i] = argv[i + 1];
    --argc;
  }
  // `compile --hier ...`: note the flag and parse the rest as usual.
  bool hier = false;
  if (argc >= 3 && std::string(argv[2]) == "--hier") {
    hier = true;
    for (int i = 2; i + 1 < argc; ++i) argv[i] = argv[i + 1];
    --argc;
  }
  // `compile --layout c,b,s ...`: parse the datatype, strip both tokens.
  bool has_layout = false;
  bruck::coll::Layout layout;
  if (argc >= 4 && std::string(argv[2]) == "--layout") {
    const std::string spec = argv[3];
    std::int64_t count = 0, blocklen = 0, stride = 0;
    const auto c1 = spec.find(','), c2 = spec.find(',', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) return usage();
    count = std::atoll(spec.substr(0, c1).c_str());
    blocklen = std::atoll(spec.substr(c1 + 1, c2 - c1 - 1).c_str());
    stride = std::atoll(spec.substr(c2 + 1).c_str());
    if (count < 1 || blocklen < 1 || stride < blocklen) {
      std::cerr << "error: --layout needs count >= 1, blocklen >= 1, "
                   "stride >= blocklen\n";
      return 2;
    }
    layout = bruck::coll::Layout::vector(count, blocklen, stride);
    has_layout = true;
    for (int i = 2; i + 2 < argc; ++i) argv[i] = argv[i + 2];
    argc -= 2;
  }
  if (argc < 5) return usage();
  const std::string cmd = argv[1];
  if ((nonblocking || has_layout || hier) && cmd != "compile") return usage();
  if (nonblocking + has_layout + hier > 1) return usage();
  const std::int64_t n = std::atoll(argv[2]);
  const int k = std::atoi(argv[3]);
  const std::string arg4 = argv[4];
  const bool arg4_numeric =
      !arg4.empty() && arg4.find_first_not_of("0123456789") == std::string::npos;
  const std::int64_t b = arg4_numeric ? std::atoll(argv[4]) : -1;
  if (n < 1 || k < 1) return usage();
  // A negative block size is an invalid argument, not a counts-file path.
  if (!arg4.empty() && arg4[0] == '-') return usage();
  if (!arg4_numeric && cmd != "compile") return usage();
  try {
    if (cmd == "index") return cmd_index(n, k, b, machine_from(argc, argv, 5));
    if (cmd == "concat") return cmd_concat(n, k, b, machine_from(argc, argv, 5));
    if (cmd == "rounds") {
      if (argc < 6) return usage();
      return cmd_rounds(n, k, b, std::atoll(argv[5]));
    }
    if (cmd == "compile") {
      const std::int64_t radix = argc > 5 ? std::atoll(argv[5]) : 0;
      if (nonblocking) {
        if (!arg4_numeric) return usage();
        return cmd_compile_nonblocking(n, k, b, radix);
      }
      if (hier) {
        if (!arg4_numeric) return usage();
        return cmd_compile_hier(n, k, b, /*group=*/radix);
      }
      if (!arg4_numeric) {
        if (has_layout) return usage();
        return cmd_compile_counts(n, k, arg4, radix);
      }
      return cmd_compile(n, k, b, radix, has_layout ? &layout : nullptr);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
