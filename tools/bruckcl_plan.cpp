// bruckcl_plan — command-line planner for the collectives.
//
//   bruckcl_plan index   <n> <k> <block_bytes> [beta_us] [tau_us_per_byte]
//   bruckcl_plan concat  <n> <k> <block_bytes> [beta_us] [tau_us_per_byte]
//   bruckcl_plan rounds  <n> <k> <block_bytes> <radix>
//   bruckcl_plan compile <n> <k> <block_bytes> [radix]
//
// `index` prints the full radix trade-off curve under the given machine and
// the tuner's pick; `concat` prints the strategy comparison vs the lower
// bounds; `rounds` prints the round-by-round transfer listing of the index
// algorithm (handy for eyeballing patterns); `compile` lowers the compiled
// execution plans the facade's hot path runs (index with the tuned — or
// given — radix, plus the concat plan) and prints their anatomy.
//
// Defaults for (beta, tau) are the paper's SP-1 measurements.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "coll/plan.hpp"
#include "coll/plan_cache.hpp"
#include "model/costs.hpp"
#include "model/linear_model.hpp"
#include "model/lower_bounds.hpp"
#include "model/tuner.hpp"
#include "sched/builders_index.hpp"
#include "sched/render.hpp"
#include "util/table.hpp"

namespace {

int usage() {
  std::cerr << "usage:\n"
            << "  bruckcl_plan index   <n> <k> <block_bytes> [beta_us] [tau_us_per_byte]\n"
            << "  bruckcl_plan concat  <n> <k> <block_bytes> [beta_us] [tau_us_per_byte]\n"
            << "  bruckcl_plan rounds  <n> <k> <block_bytes> <radix>\n"
            << "  bruckcl_plan compile <n> <k> <block_bytes> [radix]\n";
  return 2;
}

bruck::model::LinearModel machine_from(int argc, char** argv, int beta_idx) {
  bruck::model::LinearModel m = bruck::model::ibm_sp1();
  if (argc > beta_idx) {
    m.name = "custom";
    m.beta_us = std::atof(argv[beta_idx]);
  }
  if (argc > beta_idx + 1) m.tau_us_per_byte = std::atof(argv[beta_idx + 1]);
  return m;
}

int cmd_index(std::int64_t n, int k, std::int64_t b,
              const bruck::model::LinearModel& machine) {
  std::cout << "index operation (alltoall): n = " << n << ", k = " << k
            << ", b = " << b << " bytes; machine \"" << machine.name
            << "\" (beta " << machine.beta_us << " us, tau "
            << machine.tau_us_per_byte << " us/B)\n\n";
  bruck::TextTable t({"radix", "C1", "C2 (bytes)", "modeled us"});
  for (const auto& c : bruck::model::index_radix_curve(n, k, b, machine)) {
    t.add(c.radix, c.metrics.c1, c.metrics.c2, c.predicted_us);
  }
  t.print(std::cout);
  const auto best = bruck::model::pick_index_radix(n, k, b, machine);
  std::cout << "\ntuner pick: r = " << best.radix << " (~" << best.predicted_us
            << " us); lower bounds: C1 >= "
            << bruck::model::index_c1_lower_bound(n, k) << ", C2 >= "
            << bruck::model::index_c2_lower_bound(n, k, b) << " bytes\n";
  return 0;
}

int cmd_concat(std::int64_t n, int k, std::int64_t b,
               const bruck::model::LinearModel& machine) {
  using bruck::model::ConcatLastRound;
  std::cout << "concatenation (allgather): n = " << n << ", k = " << k
            << ", b = " << b << " bytes\n\n";
  bruck::TextTable t({"algorithm", "C1", "C2 (bytes)", "modeled us"});
  auto add = [&](const std::string& name, const bruck::model::CostMetrics& m) {
    t.add(name, m.c1, m.c2, machine.predict_us(m));
  };
  add("bruck (auto)",
      bruck::model::concat_bruck_cost(n, k, b, ConcatLastRound::kAuto));
  add("bruck (two-round)",
      bruck::model::concat_bruck_cost(n, k, b, ConcatLastRound::kTwoRound));
  add("bruck (column-granular)",
      bruck::model::concat_bruck_cost(n, k, b,
                                      ConcatLastRound::kColumnGranular));
  if (k == 1) {
    add("folklore", bruck::model::concat_folklore_cost(n, b));
    add("ring", bruck::model::concat_ring_cost(n, b));
  }
  t.print(std::cout);
  std::cout << "\nlower bounds: C1 >= "
            << bruck::model::concat_c1_lower_bound(n, k) << ", C2 >= "
            << bruck::model::concat_c2_lower_bound(n, k, b) << " bytes";
  if (bruck::model::concat_paper_nonoptimal_range(n, k, b)) {
    std::cout << "  [inside the paper's non-optimal range]";
  }
  std::cout << '\n';
  return 0;
}

int cmd_rounds(std::int64_t n, int k, std::int64_t b, std::int64_t r) {
  const bruck::sched::Schedule s = bruck::sched::build_index_bruck(n, r, k, b);
  std::cout << bruck::sched::render_rounds(s) << '\n'
            << bruck::sched::render_traffic_matrix(s);
  return 0;
}

int cmd_compile(std::int64_t n, int k, std::int64_t b, std::int64_t radix) {
  namespace coll = bruck::coll;
  if (radix == 0) {
    const bruck::model::RadixChoice choice =
        bruck::model::pick_index_radix_cached(n, k, b, bruck::model::ibm_sp1());
    radix = choice.radix;
    std::cout << "tuner pick for the index plan: r = " << radix << "\n\n";
  }
  // Go through the cache exactly like the facade, so the stats line shows
  // the real hit/miss machinery.
  coll::PlanCache& cache = coll::PlanCache::global();
  const auto index_lookup = cache.get_or_lower(
      coll::index_plan_key(coll::IndexAlgorithm::kBruck, n, k, radix));
  std::cout << index_lookup.plan->describe() << '\n';

  const bruck::model::ConcatLastRound strategy =
      bruck::model::resolve_concat_last_round(
          n, k, b, bruck::model::ConcatLastRound::kAuto);
  const auto concat_lookup = cache.get_or_lower(
      coll::concat_plan_key(coll::ConcatAlgorithm::kBruck, n, k, strategy, b));
  std::cout << concat_lookup.plan->describe() << '\n';

  const coll::PlanCacheStats stats = cache.stats();
  std::cout << "plan cache: " << stats.entries << " entries, " << stats.hits
            << " hits, " << stats.misses << " misses\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string cmd = argv[1];
  const std::int64_t n = std::atoll(argv[2]);
  const int k = std::atoi(argv[3]);
  const std::int64_t b = std::atoll(argv[4]);
  if (n < 1 || k < 1 || b < 0) return usage();
  try {
    if (cmd == "index") return cmd_index(n, k, b, machine_from(argc, argv, 5));
    if (cmd == "concat") return cmd_concat(n, k, b, machine_from(argc, argv, 5));
    if (cmd == "rounds") {
      if (argc < 6) return usage();
      return cmd_rounds(n, k, b, std::atoll(argv[5]));
    }
    if (cmd == "compile") {
      return cmd_compile(n, k, b, argc > 5 ? std::atoll(argv[5]) : 0);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
