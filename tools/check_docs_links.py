#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every tracked *.md file (skipping build trees and third_party) for
inline markdown links ``[text](target)`` and reference definitions
``[label]: target``, and verifies that every *relative* target resolves to
an existing file or directory.  Anchors (``path#heading`` or ``#heading``)
are checked against a GitHub-style slugging of the target file's headings,
including GitHub's ``-1``/``-2`` numbering of duplicate headings — so the
README's deep links into docs/ sections break the build when a heading is
renamed.  Fenced blocks and inline code spans are stripped before both the
link scan and the heading scan.  External links (http/https/mailto) are
not fetched.

Usage: python3 tools/check_docs_links.py [repo_root]
Exit status: 0 when all links resolve, 1 otherwise (each failure printed).
"""

import os
import re
import sys

SKIP_DIRS = {"build", "third_party", ".git", ".claude"}

INLINE_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_LINK = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s*(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
INLINE_CODE = re.compile(r"`[^`\n]*`")


def strip_code(text: str) -> str:
    """Remove fenced blocks and inline code spans before scanning."""
    return INLINE_CODE.sub("", CODE_FENCE.sub("", text))


def slugify(heading: str) -> str:
    """GitHub's anchor slugging, close enough for ASCII docs."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def md_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        text = strip_code(f.read())
    anchors = set()
    seen = {}
    for heading in HEADING.findall(text):
        slug = slugify(heading)
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        # GitHub numbers repeated headings: #slug, #slug-1, #slug-2, ...
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    failures = []
    checked = 0
    for md in md_files(root):
        with open(md, encoding="utf-8") as f:
            text = strip_code(f.read())
        targets = (
            INLINE_LINK.findall(text)
            + IMAGE_LINK.findall(text)
            + REF_DEF.findall(text)
        )
        for target in targets:
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                continue
            path_part, _, anchor = target.partition("#")
            resolved = (
                md
                if not path_part
                else os.path.normpath(
                    os.path.join(os.path.dirname(md), path_part)
                )
            )
            checked += 1
            rel = os.path.relpath(md, root)
            if not os.path.exists(resolved):
                failures.append(f"{rel}: broken link target '{target}'")
                continue
            if anchor and resolved.endswith(".md"):
                if slugify(anchor) not in anchors_of(resolved):
                    failures.append(
                        f"{rel}: missing anchor '#{anchor}' in '{target}'"
                    )
    for failure in failures:
        print(f"FAIL {failure}")
    print(
        f"check_docs_links: {checked} intra-repo links checked, "
        f"{len(failures)} broken"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
