// Shared plumbing for the figure/table benches: run an index or concat
// configuration on the threaded substrate at the paper's scale (n = 64),
// return the *measured* trace metrics, and cross-check them against the
// closed-form costs so a bench can never silently report formula values
// that the implementation does not achieve.
#pragma once

#include <cstdint>
#include <iostream>
#include <span>
#include <vector>

#include "coll/concat_bruck.hpp"
#include "coll/concat_folklore.hpp"
#include "coll/concat_ring.hpp"
#include "coll/index_bruck.hpp"
#include "coll/verify.hpp"
#include "model/costs.hpp"
#include "mps/runtime.hpp"
#include "util/assert.hpp"

namespace bruck::bench {

/// Execute the Bruck index algorithm on the fabric, verify payload
/// delivery, check the measured metrics equal the closed form, and return
/// them.
inline model::CostMetrics measure_index_bruck(std::int64_t n, int k,
                                              std::int64_t block_bytes,
                                              std::int64_t radix) {
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  mps::RunResult rr = mps::run_spmd(n, k, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> send(static_cast<std::size_t>(n * block_bytes));
    std::vector<std::byte> recv(send.size());
    coll::fill_index_send(send, n, rank, block_bytes, 7);
    coll::index_bruck(comm, send, recv, block_bytes,
                      coll::IndexBruckOptions{radix, 0});
    errors[static_cast<std::size_t>(rank)] =
        coll::check_index_recv(recv, n, rank, block_bytes, 7);
  });
  for (const std::string& e : errors) {
    BRUCK_ENSURE_MSG(e.empty(), "bench payload verification failed: " + e);
  }
  const model::CostMetrics measured = rr.trace->metrics();
  const model::CostMetrics closed =
      model::index_bruck_cost(n, radix, k, block_bytes);
  BRUCK_ENSURE_MSG(measured == closed,
                   "measured metrics diverged from the closed form");
  return measured;
}

/// Same for the concatenation algorithm.
inline model::CostMetrics measure_concat_bruck(std::int64_t n, int k,
                                               std::int64_t block_bytes,
                                               model::ConcatLastRound strategy) {
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  mps::RunResult rr = mps::run_spmd(n, k, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> send(static_cast<std::size_t>(block_bytes));
    std::vector<std::byte> recv(static_cast<std::size_t>(n * block_bytes));
    coll::fill_concat_send(send, rank, block_bytes, 7);
    coll::concat_bruck(comm, send, recv, block_bytes,
                       coll::ConcatBruckOptions{strategy, 0});
    errors[static_cast<std::size_t>(rank)] =
        coll::check_concat_recv(recv, n, block_bytes, 7);
  });
  for (const std::string& e : errors) {
    BRUCK_ENSURE_MSG(e.empty(), "bench payload verification failed: " + e);
  }
  const model::CostMetrics measured = rr.trace->metrics();
  const model::CostMetrics closed =
      model::concat_bruck_cost(n, k, block_bytes, strategy);
  BRUCK_ENSURE_MSG(measured == closed,
                   "measured metrics diverged from the closed form");
  return measured;
}

inline model::CostMetrics measure_concat_folklore(std::int64_t n,
                                                  std::int64_t block_bytes) {
  mps::RunResult rr = mps::run_spmd(n, 1, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> send(static_cast<std::size_t>(block_bytes));
    std::vector<std::byte> recv(static_cast<std::size_t>(n * block_bytes));
    coll::fill_concat_send(send, rank, block_bytes, 7);
    coll::concat_folklore(comm, send, recv, block_bytes, {});
    BRUCK_ENSURE(coll::check_concat_recv(recv, n, block_bytes, 7).empty());
  });
  return rr.trace->metrics();
}

inline model::CostMetrics measure_concat_ring(std::int64_t n,
                                              std::int64_t block_bytes) {
  mps::RunResult rr = mps::run_spmd(n, 1, [&](mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    std::vector<std::byte> send(static_cast<std::size_t>(block_bytes));
    std::vector<std::byte> recv(static_cast<std::size_t>(n * block_bytes));
    coll::fill_concat_send(send, rank, block_bytes, 7);
    coll::concat_ring(comm, send, recv, block_bytes, {});
    BRUCK_ENSURE(coll::check_concat_recv(recv, n, block_bytes, 7).empty());
  });
  return rr.trace->metrics();
}

}  // namespace bruck::bench
