// Section 2 — the lower-bound landscape, with every algorithm's *measured*
// measures placed against it:
//   * Propositions 2.1–2.4 (standalone bounds, both operations),
//   * Theorem 2.5 (volume floor for round-optimal index algorithms; the
//     r = k+1 Bruck algorithm meets it with equality at exact powers),
//   * Theorem 2.6 (round floor for volume-optimal index algorithms; the
//     r = n Bruck algorithm meets it with equality),
//   * Theorem 2.9 (one-port Ω(bn log n) volume at O(log n) rounds).
#include <cstdint>
#include <iostream>

#include "bench_common.hpp"
#include "model/lower_bounds.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main() {
  const std::int64_t b = 4;

  std::cout << "Theorem 2.5 — round-optimal index algorithms must move "
               "Omega(n log n) data\n(r = k+1 meets the bound exactly at "
               "n = (k+1)^d):\n\n";
  bruck::TextTable t25({"n", "k", "C1 (=min)", "measured C2",
                        "Thm 2.5 bound", "Prop 2.4 bound"});
  struct Case {
    std::int64_t n;
    int k;
  };
  for (const auto& [n, kk] : {Case{8, 1}, Case{16, 1}, Case{32, 1},
                              Case{64, 1}, Case{9, 2}, Case{27, 2},
                              Case{16, 3}, Case{64, 3}}) {
    const bruck::model::CostMetrics m =
        bruck::bench::measure_index_bruck(n, kk, b, kk + 1);
    t25.add(n, kk, m.c1, m.c2,
            bruck::model::index_c2_bound_at_min_rounds(n, kk, b),
            bruck::model::index_c2_lower_bound(n, kk, b));
  }
  t25.print(std::cout);
  std::cout << "\nthe measured C2 equals the Theorem 2.5 bound in every row "
               "— the compound bound is tight and far above the standalone "
               "Proposition 2.4 bound.\n\n";

  std::cout << "Theorem 2.6 — volume-optimal index algorithms need "
               ">= (n-1)/k rounds (r = n meets it):\n\n";
  bruck::TextTable t26({"n", "k", "measured C1", "Thm 2.6 bound",
                        "measured C2", "C2 bound (met)"});
  for (const auto& [n, kk] :
       {Case{8, 1}, Case{16, 1}, Case{64, 1}, Case{16, 3}, Case{33, 4}}) {
    const bruck::model::CostMetrics m =
        bruck::bench::measure_index_bruck(n, kk, b, n);
    t26.add(n, kk, m.c1, bruck::model::index_c1_bound_at_min_volume(n, kk),
            m.c2, bruck::model::index_c2_lower_bound(n, kk, b));
  }
  t26.print(std::cout);

  std::cout << "\nTheorem 2.9 — at k = 1 with C1 = O(log n), C2 is "
               "Omega(b n log n); the r = 2 algorithm tracks b·n·log2(n)/2 "
               "within a factor of ~2:\n\n";
  bruck::TextTable t29({"n", "C1", "measured C2", "b*n*log2(n)",
                        "measured / order"});
  for (const std::int64_t n : {8, 16, 32, 64}) {
    const bruck::model::CostMetrics m =
        bruck::bench::measure_index_bruck(n, 1, b, 2);
    const double order = bruck::model::index_c2_logn_rounds_order(n, b);
    t29.add(n, m.c1, m.c2, order, static_cast<double>(m.c2) / order);
  }
  t29.print(std::cout);

  std::cout << "\nthe full C1/C2 trade-off at n = 64, k = 1 (measured):\n\n";
  bruck::TextTable curve({"radix", "C1", "C1 lb", "C2", "C2 lb"});
  for (const std::int64_t r : {2, 3, 4, 8, 16, 32, 64}) {
    const bruck::model::CostMetrics m =
        bruck::bench::measure_index_bruck(64, 1, b, r);
    curve.add(r, m.c1, bruck::model::index_c1_lower_bound(64, 1), m.c2,
              bruck::model::index_c2_lower_bound(64, 1, b));
  }
  curve.print(std::cout);
  std::cout << "\nno radix reaches both bounds at once — exactly the "
               "impossibility Section 2.3 proves.\n";
  return 0;
}
