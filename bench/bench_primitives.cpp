// The one-to-all / all-to-one primitives of the paper's introduction, with
// the round bound of Proposition 2.1 as the yardstick: the k-port circulant
// broadcast meets ⌈log_{k+1} n⌉ with equality at *every* n (the growth
// argument of the bound, run forward), and gather/scatter sit at the
// binomial-tree measures the folklore baseline is built from.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "coll/bcast.hpp"
#include "coll/gather_scatter.hpp"
#include "model/costs.hpp"
#include "model/lower_bounds.hpp"
#include "mps/runtime.hpp"
#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

bruck::model::CostMetrics measure_bcast(std::int64_t n, int k, std::int64_t b,
                                        bool circulant) {
  bruck::mps::RunResult rr =
      bruck::mps::run_spmd(n, k, [&](bruck::mps::Communicator& comm) {
        std::vector<std::byte> data(static_cast<std::size_t>(b));
        if (comm.rank() == 0) bruck::fill_payload(data, 3, 0, 0);
        if (circulant) {
          bruck::coll::bcast_circulant(comm, 0, data, {});
        } else {
          bruck::coll::bcast_binomial(comm, 0, data, {});
        }
        for (std::size_t i = 0; i < data.size(); ++i) {
          BRUCK_ENSURE(data[i] == bruck::payload_byte(3, 0, 0, i));
        }
      });
  const bruck::model::CostMetrics measured = rr.trace->metrics();
  const bruck::model::CostMetrics closed =
      circulant ? bruck::model::bcast_circulant_cost(n, k, b)
                : bruck::model::bcast_binomial_cost(n, b);
  BRUCK_ENSURE_MSG(measured == closed, "bcast trace diverged from closed form");
  return measured;
}

}  // namespace

int main(int argc, char** argv) {
  const bruck::bench::BenchArgs args = bruck::bench::parse_bench_args(argc, argv);
  std::ofstream csv_file = bruck::bench::open_csv(args);
  const std::int64_t b = 256;
  const std::vector<std::int64_t> bcast_ns =
      args.smoke ? std::vector<std::int64_t>{5, 9, 16}
                 : std::vector<std::int64_t>{5, 9, 16, 17, 27, 40, 64};
  const std::vector<std::int64_t> gs_ns =
      args.smoke ? std::vector<std::int64_t>{8, 13, 16}
                 : std::vector<std::int64_t>{8, 13, 16, 27, 32, 64};

  std::unique_ptr<bruck::CsvWriter> csv;
  if (csv_file.is_open()) {
    csv = std::make_unique<bruck::CsvWriter>(
        csv_file,
        std::vector<std::string>{"op", "n", "k", "b", "c1", "c2", "c1_bound"});
  }

  std::cout << "broadcast: k-port circulant tree vs Proposition 2.1 "
               "(payload 256 B, measured)\n\n";
  bruck::TextTable t({"n", "k", "C1", "Prop 2.1 bound", "C2",
                      "binomial C1 (k=1)"});
  for (const std::int64_t n : bcast_ns) {
    for (const int k : {1, 2, 3}) {
      const bruck::model::CostMetrics m = measure_bcast(n, k, b, true);
      const std::int64_t binom =
          k == 1 ? measure_bcast(n, 1, b, false).c1 : 0;
      t.add(n, k, m.c1, bruck::model::concat_c1_lower_bound(n, k), m.c2,
            k == 1 ? std::to_string(binom) : std::string("-"));
      if (csv) {
        csv->row({"bcast_circulant", std::to_string(n), std::to_string(k),
                  std::to_string(b), std::to_string(m.c1), std::to_string(m.c2),
                  std::to_string(bruck::model::concat_c1_lower_bound(n, k))});
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nthe circulant broadcast achieves the bound for every n and "
               "k — the Proposition 2.1 growth argument run forward.\n\n";

  std::cout << "gather/scatter (binomial, one port, b = 256):\n\n";
  bruck::TextTable gs({"n", "gather C1", "gather C2", "scatter C1",
                       "scatter C2", "b(n-1)"});
  for (const std::int64_t n : gs_ns) {
    const bruck::model::CostMetrics g = bruck::model::gather_binomial_cost(n, b);
    const bruck::model::CostMetrics s =
        bruck::model::scatter_binomial_cost(n, b);
    gs.add(n, g.c1, g.c2, s.c1, s.c2, b * (n - 1));
    if (csv) {
      csv->row({"gather_binomial", std::to_string(n), "1", std::to_string(b),
                std::to_string(g.c1), std::to_string(g.c2), ""});
      csv->row({"scatter_binomial", std::to_string(n), "1", std::to_string(b),
                std::to_string(s.c1), std::to_string(s.c2), ""});
    }
  }
  gs.print(std::cout);
  std::cout << "\nC2 equals b(n-1) exactly at powers of two and stays within "
               "a factor of two otherwise (truncated subtrees).\n";
  return 0;
}
