// Transport-backend wall-clock comparison: the same collectives, the same
// pipelined execution path, run over all three fabrics — in-process rank
// threads (the oracle substrate), forked processes over shared-memory MPSC
// rings, and forked processes over loopback TCP + epoll.
//
// This is a *wall-clock* benchmark (unlike the closed-form model sweeps):
// numbers vary with the host.  The interesting shape is relative — the shm
// fabric's lock-free rings should track the thread fabric within a small
// factor, while the socket fabric pays per-message syscall + copy costs
// that the paper's C2 term models as β.
//
//   bench_fabric [--smoke] [--csv <path>]
//
// CSV columns: backend, collective, n, k, block_bytes, reps, wall_seconds,
// mb_per_s (aggregate payload through one rank per second), default_radix,
// calibrated_radix — the last two compare the index-radix pick under the
// compiled-in machine vs this fabric's measured β/τ (tune:: ladder, run
// once per backend; equal when calibration is unavailable).
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <vector>

#include "bench_args.hpp"
#include "coll/api.hpp"
#include "model/tuner.hpp"
#include "mps/bootstrap.hpp"
#include "tune/calibrate.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using bruck::coll::ReduceElem;
using bruck::coll::ReduceOp;

/// One timed configuration: `reps` back-to-back collectives inside one
/// fabric launch (so bootstrap cost — fork, connect, shm init — is
/// excluded from the per-call figure but visible in wall_seconds).
struct Workload {
  const char* collective;
  std::int64_t n;
  int k;
  std::int64_t block_bytes;
  int reps;
  /// Forced leader-model group size (alltoall only; 0 = flat).  The
  /// group-geometry rows show what the two-level composite costs on each
  /// real fabric relative to the flat exchange.
  std::int64_t hier_group = 0;
};

double run_workload(bruck::mps::FabricBackend backend, const Workload& w) {
  bruck::mps::SpawnOptions so;
  so.n = w.n;
  so.k = w.k;
  so.backend = backend;
  so.record_trace = false;  // timing run: no event logging
  const auto body = [w](bruck::mps::Communicator& comm)
      -> std::vector<std::byte> {
    const std::int64_t n = comm.size();
    const std::int64_t b = w.block_bytes;
    std::vector<std::byte> send(static_cast<std::size_t>(n * b),
                                std::byte{0x5A});
    std::vector<std::byte> recv(send.size());
    comm.barrier();  // start the clock with everyone bootstrapped
    int round = 0;
    for (int rep = 0; rep < w.reps; ++rep) {
      if (std::strcmp(w.collective, "alltoall") == 0) {
        bruck::coll::AlltoallOptions o;
        o.start_round = round;
        if (w.hier_group > 0) {
          o.hier = bruck::coll::HierMode::kOn;
          o.hier_group = w.hier_group;
        }
        round = bruck::coll::alltoall(comm, send, recv, b, o);
      } else if (std::strcmp(w.collective, "allgather") == 0) {
        bruck::coll::AllgatherOptions o;
        o.start_round = round;
        round = bruck::coll::allgather(
            comm, std::span<const std::byte>(send.data(),
                                             static_cast<std::size_t>(b)),
            recv, b, o);
      } else {
        bruck::coll::AllreduceOptions o;
        o.start_round = round;
        round = bruck::coll::allreduce(comm, send, recv,
                                       ReduceOp::sum(ReduceElem::kI64), o);
      }
    }
    return {};
  };
  const bruck::mps::SpawnResult r = bruck::mps::spawn_local(so, body);
  return r.wall_seconds;
}

/// One tune::calibrate launch on `backend`; nullopt when the fabric can't
/// be measured (single rank / non-native engine).
std::optional<bruck::model::LinearModel> calibrate_backend(
    bruck::mps::FabricBackend backend, std::int64_t n, int k) {
  bruck::mps::SpawnOptions so;
  so.n = n;
  so.k = k;
  so.backend = backend;
  so.record_trace = false;
  const std::string fabric = bruck::mps::to_string(backend);
  const bruck::mps::SpawnResult run = bruck::mps::spawn_local(
      so, [&fabric](bruck::mps::Communicator& comm) -> std::vector<std::byte> {
        const bruck::tune::Calibration cal =
            bruck::tune::calibrate(comm, fabric);
        std::vector<std::byte> payload(1 + 3 * sizeof(double));
        payload[0] = cal.measured ? std::byte{1} : std::byte{0};
        const double vals[3] = {cal.machine.beta_us,
                                cal.machine.tau_us_per_byte,
                                cal.machine.gamma_us_per_byte};
        std::memcpy(payload.data() + 1, vals, sizeof(vals));
        return payload;
      });
  const std::vector<std::byte>& p0 = run.rank_payloads.at(0);
  if (p0.size() != 1 + 3 * sizeof(double) || p0[0] != std::byte{1}) {
    return std::nullopt;
  }
  double vals[3] = {};
  std::memcpy(vals, p0.data() + 1, sizeof(vals));
  bruck::model::LinearModel m;
  m.name = fabric;
  m.beta_us = vals[0];
  m.tau_us_per_byte = vals[1];
  m.gamma_us_per_byte = vals[2];
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bruck::bench::BenchArgs args = bruck::bench::parse_bench_args(argc, argv);
  std::ofstream csv_file = bruck::bench::open_csv(args);
  std::unique_ptr<bruck::CsvWriter> csv;
  if (csv_file.is_open()) {
    csv = std::make_unique<bruck::CsvWriter>(
        csv_file,
        std::vector<std::string>{"backend", "collective", "n", "k",
                                 "block_bytes", "reps", "group",
                                 "wall_seconds", "mb_per_s", "default_radix",
                                 "calibrated_radix"});
  }

  const std::int64_t n = args.smoke ? 4 : 8;
  const int reps = args.smoke ? 20 : 200;
  std::vector<Workload> workloads;
  for (const char* coll : {"alltoall", "allgather", "allreduce"}) {
    for (const std::int64_t b : args.smoke
                                    ? std::vector<std::int64_t>{256, 4096}
                                    : std::vector<std::int64_t>{64, 1024,
                                                                16384}) {
      workloads.push_back(Workload{coll, n, 2, b, reps});
    }
  }
  // Group-geometry rows: the same alltoall forced through the two-level
  // leader model at nominal groups of 2 and 4 (flat rows above are the
  // baseline).
  for (const std::int64_t g : {std::int64_t{2}, std::int64_t{4}}) {
    for (const std::int64_t b : args.smoke
                                    ? std::vector<std::int64_t>{1024}
                                    : std::vector<std::int64_t>{1024,
                                                                16384}) {
      workloads.push_back(Workload{"alltoall", n, 2, b, reps, g});
    }
  }

  const bruck::mps::FabricBackend backends[] = {
      bruck::mps::FabricBackend::kThread, bruck::mps::FabricBackend::kShm,
      bruck::mps::FabricBackend::kSocket};

  // Measure β/τ/γ once per fabric up front; the CSV's calibrated_radix
  // column shows where the measured constants move the index-radix pick
  // away from the compiled-in ibm_sp1 model on that fabric.
  std::optional<bruck::model::LinearModel> measured[3];
  for (std::size_t i = 0; i < 3; ++i) {
    measured[i] = calibrate_backend(backends[i], n, 2);
    if (measured[i]) {
      std::cout << "calibrated " << bruck::mps::to_string(backends[i])
                << ": beta = " << measured[i]->beta_us
                << " us, tau = " << measured[i]->tau_us_per_byte
                << " us/B\n";
    }
  }
  std::cout << "\n";

  std::cout << "transport backends, wall clock (n = " << n << ", k = 2, "
            << reps << " reps per cell)\n\n";
  bruck::TextTable t({"collective", "b bytes", "thread s", "shm s",
                      "socket s"});
  for (const Workload& w : workloads) {
    const std::string name =
        w.hier_group > 0
            ? std::string(w.collective) + " g=" + std::to_string(w.hier_group)
            : std::string(w.collective);
    std::vector<std::string> row{name, std::to_string(w.block_bytes)};
    for (std::size_t i = 0; i < 3; ++i) {
      const auto backend = backends[i];
      const double secs = run_workload(backend, w);
      row.push_back(std::to_string(secs));
      if (csv) {
        const double payload_mb =
            static_cast<double>(w.n * w.block_bytes) * w.reps / 1.0e6;
        const std::int64_t default_radix =
            bruck::model::pick_index_radix(w.n, w.k, w.block_bytes,
                                           bruck::model::ibm_sp1())
                .radix;
        const std::int64_t calibrated_radix =
            measured[i] ? bruck::model::pick_index_radix(w.n, w.k,
                                                         w.block_bytes,
                                                         *measured[i])
                              .radix
                        : default_radix;
        csv->row({bruck::mps::to_string(backend), w.collective,
                  std::to_string(w.n), std::to_string(w.k),
                  std::to_string(w.block_bytes), std::to_string(w.reps),
                  std::to_string(w.hier_group), std::to_string(secs),
                  std::to_string(secs > 0 ? payload_mb / secs : 0.0),
                  std::to_string(default_radix),
                  std::to_string(calibrated_radix)});
      }
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "\nwall_seconds includes fabric bootstrap (fork/connect/shm "
               "init); per-call cost differences dominate at high reps.\n";
  return 0;
}
