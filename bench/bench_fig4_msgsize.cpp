// Figure 4: "The measured time of the index algorithm as a function of
// message sizes on a 64 node SP-1" — one curve per power-of-two radix.
//
// Reproduction: the index algorithm is *executed* on the 64-rank substrate
// for every (radix, block size) point; the executed trace's (C1, C2) are
// priced under the SP-1 linear model (β = 29 µs, τ = 0.12 µs/byte).  The
// expected shape: small radices win at small messages (start-up bound),
// large radices win at large messages (volume bound), with each curve
// linear in the block size.
#include <cstdint>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "model/linear_model.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  const std::int64_t n = 64;
  const int k = 1;
  const bruck::model::LinearModel sp1 = bruck::model::ibm_sp1();
  const std::vector<std::int64_t> radices{2, 4, 8, 16, 32, 64};
  const std::vector<std::int64_t> sizes{1,   2,   4,    8,    16,  32, 64,
                                        128, 256, 512, 1024, 2048, 4096, 8192};

  std::cout << "Figure 4 — index time vs message size, 64-node SP-1 model, "
               "power-of-two radices\n"
            << "(modeled us from executed C1/C2; every cell verified against "
               "the closed form)\n\n";

  std::vector<std::string> headers{"block bytes"};
  for (std::int64_t r : radices) headers.push_back("r=" + std::to_string(r));
  headers.push_back("best r");
  bruck::TextTable table(headers);
  std::ostringstream csv_body;
  bruck::CsvWriter csv(csv_body, headers);

  for (const std::int64_t b : sizes) {
    std::vector<std::string> row{std::to_string(b)};
    double best = 0.0;
    std::int64_t best_r = 0;
    for (const std::int64_t r : radices) {
      const bruck::model::CostMetrics m =
          bruck::bench::measure_index_bruck(n, k, b, r);
      const double us = sp1.predict_us(m);
      std::ostringstream cell;
      cell.setf(std::ios::fixed);
      cell.precision(1);
      cell << us;
      row.push_back(cell.str());
      if (best_r == 0 || us < best) {
        best = us;
        best_r = r;
      }
    }
    row.push_back(std::to_string(best_r));
    csv.row(row);
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nCSV series:\n" << csv_body.str();
  std::cout << "\nshape check: the winning radix is non-decreasing in the "
               "message size\n(paper: \"the smaller radix tends to perform "
               "better for smaller message sizes, and vice versa\")\n";
  return 0;
}
