// Figure 6: "The measured times of the index algorithm as a function of
// radix for various message sizes" (32, 64, 128 bytes) — the claim being
// that as the message size increases, the minimum of the curve moves toward
// a larger radix.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "model/linear_model.hpp"
#include "util/table.hpp"

int main() {
  const std::int64_t n = 64;
  const int k = 1;
  const bruck::model::LinearModel sp1 = bruck::model::ibm_sp1();
  const std::vector<std::int64_t> sizes{32, 64, 128};

  std::cout << "Figure 6 — index time vs radix for 32/64/128-byte messages, "
               "64-node SP-1 model\n\n";

  bruck::TextTable table(
      {"radix", "us at b=32", "us at b=64", "us at b=128"});
  std::vector<std::int64_t> radices;
  for (std::int64_t r = 2; r <= n; ++r) {
    // Plot every radix up to 16 and then the powers of two plus n, to keep
    // the table readable; the minimum location is computed over all radices.
    if (r <= 16 || (r & (r - 1)) == 0 || r == n) radices.push_back(r);
  }
  for (const std::int64_t r : radices) {
    std::vector<std::string> row{std::to_string(r)};
    for (const std::int64_t b : sizes) {
      const double us =
          sp1.predict_us(bruck::bench::measure_index_bruck(n, k, b, r));
      row.push_back(bruck::detail::cell_to_string(us));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\ncurve minima (over all radices 2..64):\n";
  for (const std::int64_t b : sizes) {
    double best = 0.0;
    std::int64_t best_r = 0;
    for (std::int64_t r = 2; r <= n; ++r) {
      const double us = sp1.predict_us(bruck::model::index_bruck_cost(n, r, k, b));
      if (best_r == 0 || us < best) {
        best = us;
        best_r = r;
      }
    }
    std::cout << "  b = " << b << " bytes → minimum at r = " << best_r << " ("
              << best << " us)\n";
  }
  std::cout << "\npaper: \"As the message size increases, the minimal time "
               "of the curve tends to occur at a higher radix.\"\n";
  return 0;
}
