// Ablation: how much fidelity does the paper's T = C1·β + C2·τ give up by
// assuming globally synchronized rounds?  (Section 1.2 discusses exactly
// this when dismissing BSP/Postal/LogP as "substantially more complicated".)
//
// The event-driven virtual-time evaluator (sched/virtual_time.hpp) replays
// every schedule with per-rank clocks and no round barrier.  Findings this
// bench demonstrates:
//   * for the paper's own algorithms (index at any radix, circulant
//     concatenation, ring) the two models agree EXACTLY — the patterns are
//     perfectly balanced, so the simple model loses nothing;
//   * for the folklore tree the round maxima all ride the root's critical
//     path, so they agree there too;
//   * only deliberately skewed patterns open a gap — evidence for the
//     paper's choice of the simple model for these collectives.
// Also prints the round structure and traffic matrix of the n = 5 index
// (the Figure 2/3 pattern) as a schedule-level artifact.
#include <cstdint>
#include <iostream>

#include "model/linear_model.hpp"
#include "sched/builders_concat.hpp"
#include "sched/builders_index.hpp"
#include "sched/render.hpp"
#include "sched/virtual_time.hpp"
#include "util/table.hpp"

int main() {
  const bruck::model::LinearModel sp1 = bruck::model::ibm_sp1();
  const std::int64_t b = 64;

  std::cout << "linear model vs event-driven virtual time (SP-1 constants, "
               "b = 64)\n\n";
  bruck::TextTable t({"schedule", "n", "C1", "C2", "linear us", "virtual us",
                      "gap %"});
  auto row = [&](const std::string& name, const bruck::sched::Schedule& s) {
    const bruck::model::CostMetrics m = s.metrics();
    const double linear = sp1.predict_us(m);
    const double vt = bruck::sched::virtual_makespan_us(s, sp1);
    t.add(name, s.n(), m.c1, m.c2, linear, vt,
          100.0 * (linear - vt) / linear);
  };
  for (const std::int64_t n : {16, 64}) {
    row("index r=2", bruck::sched::build_index_bruck(n, 2, 1, b));
    row("index r=8", bruck::sched::build_index_bruck(n, 8, 1, b));
    row("index r=n", bruck::sched::build_index_bruck(n, n, 1, b));
    row("concat bruck",
        bruck::sched::build_concat_bruck(n, 1, b,
                                         bruck::model::ConcatLastRound::kAuto));
    row("concat folklore", bruck::sched::build_concat_folklore(n, b));
    row("concat ring", bruck::sched::build_concat_ring(n, b));
  }
  t.print(std::cout);
  std::cout << "\ngap = 0 everywhere: the collectives are balanced (or, for "
               "folklore, root-critical), so the paper's simple model is "
               "exact for them — the asynchrony refinements of BSP/LogP "
               "would buy nothing here.\n\n";

  std::cout << "round structure of the n = 5, r = 2 index (Figures 2-3):\n";
  const bruck::sched::Schedule fig =
      bruck::sched::build_index_bruck(5, 2, 1, 1);
  std::cout << bruck::sched::render_rounds(fig) << '\n';
  std::cout << bruck::sched::render_traffic_matrix(fig) << '\n';
  std::cout << "every rank ships " << fig.metrics().max_rank_sent
            << " block-bytes total — the perfect symmetry the virtual-time "
               "result reflects.\n";
  return 0;
}
