// Wall-clock microbenchmarks of the threaded substrate (google-benchmark):
// real elapsed time of the collectives with ranks as OS threads.  These are
// NOT the paper's figures (the substrate is a simulator, not an SP-1) —
// they sanity-check that the C1/C2 ordering predicted by the model shows up
// in real time on a real machine: radix-tuned Bruck beats both extremes for
// mid-sized blocks, and Bruck allgather beats ring and folklore.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <vector>

#include "coll/api.hpp"
#include "coll/layout.hpp"
#include "coll/reduction.hpp"
#include "coll/concat_bruck.hpp"
#include "coll/progress.hpp"
#include "coll/request.hpp"
#include "coll/verify.hpp"
#include "coll/concat_folklore.hpp"
#include "coll/concat_ring.hpp"
#include "coll/index_bruck.hpp"
#include "model/tuner.hpp"
#include "mps/runtime.hpp"

namespace {

void run_index(std::int64_t n, std::int64_t b, std::int64_t radix) {
  bruck::mps::FabricOptions options;
  options.n = n;
  options.k = 1;
  options.record_trace = false;
  bruck::mps::run_spmd(options, [&](bruck::mps::Communicator& comm) {
    std::vector<std::byte> send(static_cast<std::size_t>(n * b), std::byte{1});
    std::vector<std::byte> recv(send.size());
    bruck::coll::index_bruck(comm, send, recv, b,
                             bruck::coll::IndexBruckOptions{radix, 0});
  });
}

void BM_IndexBruck(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const std::int64_t b = state.range(1);
  const std::int64_t radix = state.range(2);
  for (auto _ : state) {
    run_index(n, b, radix);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          (n - 1) * b);
  state.counters["rounds"] = static_cast<double>(
      bruck::model::index_bruck_cost(n, radix, 1, b).c1);
}

void BM_AllgatherAlgorithms(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const std::int64_t b = state.range(1);
  const auto algorithm =
      static_cast<bruck::coll::ConcatAlgorithm>(state.range(2));
  bruck::coll::AllgatherOptions options;
  options.algorithm = algorithm;
  for (auto _ : state) {
    bruck::mps::FabricOptions fabric;
    fabric.n = n;
    fabric.k = 1;
    fabric.record_trace = false;
    bruck::mps::run_spmd(fabric, [&](bruck::mps::Communicator& comm) {
      std::vector<std::byte> send(static_cast<std::size_t>(b), std::byte{1});
      std::vector<std::byte> recv(static_cast<std::size_t>(n * b));
      bruck::coll::allgather(comm, send, recv, b, options);
    });
  }
  state.SetLabel(bruck::coll::to_string(algorithm));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          (n - 1) * b);
}

// Executor comparison: the same compiled plan walked by the blocking
// (PR 1) executor vs the pipelined port-engine executor, at large block
// sizes where pack/wire/unpack overlap and wire segmentation pay off.
// range = {block bytes, path (ExecutionPath value), segments}.
void BM_AlltoallExecutor(benchmark::State& state) {
  const std::int64_t n = 8;
  const std::int64_t b = state.range(0);
  const auto path = static_cast<bruck::coll::ExecutionPath>(state.range(1));
  const int segments = static_cast<int>(state.range(2));
  bruck::coll::AlltoallOptions options;
  options.algorithm = bruck::coll::IndexAlgorithm::kBruck;
  options.radix = 2;
  options.path = path;
  options.segments = segments;
  for (auto _ : state) {
    bruck::mps::FabricOptions fabric;
    fabric.n = n;
    fabric.k = 2;
    fabric.record_trace = false;
    bruck::mps::run_spmd(fabric, [&](bruck::mps::Communicator& comm) {
      std::vector<std::byte> send(static_cast<std::size_t>(n * b),
                                  std::byte{1});
      std::vector<std::byte> recv(send.size());
      bruck::coll::alltoall(comm, send, recv, b, options);
    });
  }
  state.SetLabel(bruck::coll::to_string(path) + "/S=" +
                 std::to_string(segments));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          (n - 1) * b);
}

void BM_AllgatherExecutor(benchmark::State& state) {
  const std::int64_t n = 8;
  const std::int64_t b = state.range(0);
  const auto path = static_cast<bruck::coll::ExecutionPath>(state.range(1));
  const int segments = static_cast<int>(state.range(2));
  bruck::coll::AllgatherOptions options;
  options.algorithm = bruck::coll::ConcatAlgorithm::kBruck;
  options.path = path;
  options.segments = segments;
  for (auto _ : state) {
    bruck::mps::FabricOptions fabric;
    fabric.n = n;
    fabric.k = 2;
    fabric.record_trace = false;
    bruck::mps::run_spmd(fabric, [&](bruck::mps::Communicator& comm) {
      std::vector<std::byte> send(static_cast<std::size_t>(b), std::byte{1});
      std::vector<std::byte> recv(static_cast<std::size_t>(n * b));
      bruck::coll::allgather(comm, send, recv, b, options);
    });
  }
  state.SetLabel(bruck::coll::to_string(path) + "/S=" +
                 std::to_string(segments));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          (n - 1) * b);
}

// Reduction executor comparison: the same reduce-scatter plan walked by
// the blocking executor vs the pipelined executor whose combine is fused
// into the out-of-order completion path.
// range = {block bytes, path (ExecutionPath value), segments}.
void BM_ReduceScatterExecutor(benchmark::State& state) {
  const std::int64_t n = 8;
  const std::int64_t b = state.range(0);
  const auto path = static_cast<bruck::coll::ExecutionPath>(state.range(1));
  const int segments = static_cast<int>(state.range(2));
  const bruck::coll::ReduceOp op =
      bruck::coll::ReduceOp::sum(bruck::coll::ReduceElem::kF64);
  bruck::coll::ReduceScatterOptions options;
  options.algorithm = bruck::coll::ReduceAlgorithm::kBruck;
  options.radix = 2;
  options.path = path;
  options.segments = segments;
  for (auto _ : state) {
    bruck::mps::FabricOptions fabric;
    fabric.n = n;
    fabric.k = 2;
    fabric.record_trace = false;
    bruck::mps::run_spmd(fabric, [&](bruck::mps::Communicator& comm) {
      std::vector<std::byte> send(static_cast<std::size_t>(n * b),
                                  std::byte{1});
      std::vector<std::byte> recv(static_cast<std::size_t>(b));
      bruck::coll::reduce_scatter(comm, send, recv, b, op, options);
    });
  }
  state.SetLabel(bruck::coll::to_string(path) + "/S=" +
                 std::to_string(segments));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          (n - 1) * b);
}

// Allreduce: the fused pipelined path (reduce-scatter with combine-on-
// receive + allgather) vs the naive gather-then-reduce baseline that ships
// n full vectors and combines locally.  range = {vector bytes, fused}.
void BM_AllreduceFusedVsGatherReduce(benchmark::State& state) {
  const std::int64_t n = 8;
  const std::int64_t bytes = state.range(0);
  const bool fused = state.range(1) != 0;
  const bruck::coll::ReduceOp op =
      bruck::coll::ReduceOp::sum(bruck::coll::ReduceElem::kF64);
  for (auto _ : state) {
    bruck::mps::FabricOptions fabric;
    fabric.n = n;
    fabric.k = 2;
    fabric.record_trace = false;
    bruck::mps::run_spmd(fabric, [&](bruck::mps::Communicator& comm) {
      std::vector<std::byte> send(static_cast<std::size_t>(bytes),
                                  std::byte{1});
      std::vector<std::byte> recv(static_cast<std::size_t>(bytes));
      if (fused) {
        bruck::coll::AllreduceOptions options;
        options.path = bruck::coll::ExecutionPath::kPipelined;
        bruck::coll::allreduce(comm, send, recv, op, options);
      } else {
        // Gather-then-reduce: allgather every full vector, reduce locally.
        std::vector<std::byte> all(static_cast<std::size_t>(n * bytes));
        bruck::coll::AllgatherOptions options;
        options.path = bruck::coll::ExecutionPath::kPipelined;
        bruck::coll::allgather(comm, send, all, bytes, options);
        std::memcpy(recv.data(), all.data(),
                    static_cast<std::size_t>(bytes));
        for (std::int64_t i = 1; i < n; ++i) {
          op.combine(recv.data(), all.data() + i * bytes, bytes);
        }
      }
    });
  }
  state.SetLabel(fused ? "fused" : "gather-then-reduce");
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          (n - 1) * bytes);
}

// Multi-tenancy: G same-geometry alltoalls issued together.  "serial" runs
// G blocking calls back to back; "batched" submits G nonblocking requests
// and lets the progress engine fuse them into one wire exchange over G·b
// blocks (one β per message instead of G).  k = 1 so the start-up term
// dominates — the regime where model::pick_fusion chooses to batch.
//
// Timing is manual and barrier-bracketed inside the rank body: both paths
// pay identical fabric spawn/join costs, which would otherwise dilute the
// ratio without distinguishing them.  Each iteration runs kReps batches in
// one fabric so plan caches and tag namespaces are warm, and reports the
// mean per-batch wall time from rank 0.
// range = {block bytes, G, batched}.
void BM_ConcurrentAlltoall(benchmark::State& state) {
  const std::int64_t n = 8;
  const std::int64_t b = state.range(0);
  const int G = static_cast<int>(state.range(1));
  const bool batched = state.range(2) != 0;

  // One-shot correctness gate (outside the timed loop): the batched
  // payloads must be bitwise-identical to the kReference oracle's.
  double fused_groups = 0.0;
  {
    std::atomic<bool> ok{true};
    std::atomic<std::uint64_t> groups{0};
    bruck::mps::FabricOptions fabric;
    fabric.n = n;
    fabric.k = 1;
    fabric.record_trace = false;
    bruck::mps::run_spmd(fabric, [&](bruck::mps::Communicator& comm) {
      const std::int64_t rank = comm.rank();
      std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(G));
      std::vector<std::vector<std::byte>> recv(static_cast<std::size_t>(G));
      std::vector<bruck::coll::Request> reqs;
      for (int g = 0; g < G; ++g) {
        send[static_cast<std::size_t>(g)].resize(
            static_cast<std::size_t>(n * b));
        recv[static_cast<std::size_t>(g)].resize(
            static_cast<std::size_t>(n * b));
        bruck::coll::fill_index_send(send[static_cast<std::size_t>(g)], n,
                                     rank, b,
                                     900 + static_cast<std::uint64_t>(g));
        reqs.push_back(bruck::coll::ialltoall(
            comm, send[static_cast<std::size_t>(g)],
            recv[static_cast<std::size_t>(g)], b));
      }
      bruck::coll::wait_all(reqs);
      groups.store(
          bruck::coll::ProgressEngine::for_comm(comm).stats().fused_groups);
      std::vector<std::byte> oracle(static_cast<std::size_t>(n * b));
      bruck::coll::AlltoallOptions reference;
      reference.path = bruck::coll::ExecutionPath::kReference;
      for (int g = 0; g < G; ++g) {
        reference.start_round =
            bruck::coll::alltoall(comm, send[static_cast<std::size_t>(g)],
                                  oracle, b, reference);
        if (oracle != recv[static_cast<std::size_t>(g)]) ok.store(false);
      }
    });
    if (!ok.load()) {
      state.SkipWithError("batched payloads diverge from the oracle");
      return;
    }
    fused_groups = static_cast<double>(groups.load());
  }

  constexpr int kReps = 8;
  for (auto _ : state) {
    std::atomic<double> wall_seconds{0.0};
    bruck::mps::FabricOptions fabric;
    fabric.n = n;
    fabric.k = 1;
    fabric.record_trace = false;
    bruck::mps::run_spmd(fabric, [&](bruck::mps::Communicator& comm) {
      std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(G));
      std::vector<std::vector<std::byte>> recv(static_cast<std::size_t>(G));
      for (int g = 0; g < G; ++g) {
        send[static_cast<std::size_t>(g)].assign(
            static_cast<std::size_t>(n * b), std::byte{1});
        recv[static_cast<std::size_t>(g)].resize(
            static_cast<std::size_t>(n * b));
      }
      comm.barrier();
      const auto t0 = std::chrono::steady_clock::now();
      bruck::coll::AlltoallOptions options;
      for (int rep = 0; rep < kReps; ++rep) {
        if (batched) {
          std::vector<bruck::coll::Request> reqs;
          for (int g = 0; g < G; ++g) {
            reqs.push_back(bruck::coll::ialltoall(
                comm, send[static_cast<std::size_t>(g)],
                recv[static_cast<std::size_t>(g)], b));
          }
          bruck::coll::wait_all(reqs);
        } else {
          for (int g = 0; g < G; ++g) {
            options.start_round = bruck::coll::alltoall(
                comm, send[static_cast<std::size_t>(g)],
                recv[static_cast<std::size_t>(g)], b, options);
          }
        }
      }
      comm.barrier();
      const auto t1 = std::chrono::steady_clock::now();
      if (comm.rank() == 0) {
        wall_seconds.store(std::chrono::duration<double>(t1 - t0).count() /
                           kReps);
      }
    });
    state.SetIterationTime(wall_seconds.load());
  }
  state.SetLabel(batched ? "batched" : "serial");
  state.counters["fused_groups"] = fused_groups;
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * G *
                          n * (n - 1) * b);
}

// Strided datatypes on the hot path: the distributed-transpose geometry
// (an n_dim×n_dim f64 matrix row-block distributed over n = 8 ranks, send
// and receive sides both column-sliced) exchanged either zero-copy through
// `coll::Layout` pack/unpack maps or via the user-side staging idiom the
// layouts replace (gather into a packed buffer, contiguous alltoall,
// scatter back out).  Wire traffic is identical; the difference is purely
// the two local copies of every byte.  range = {n_dim, staged}.
void BM_StridedAlltoall(benchmark::State& state) {
  const std::int64_t n = 8;
  const std::int64_t n_dim = state.range(0);
  const bool staged = state.range(1) != 0;
  const std::int64_t rows = n_dim / n;
  const std::int64_t kD = static_cast<std::int64_t>(sizeof(double));
  const std::int64_t tile_bytes = rows * rows * kD;
  const std::int64_t slab_bytes = rows * n_dim * kD;
  const bruck::coll::Layout lay =
      bruck::coll::Layout::vector(rows, rows * kD, n_dim * kD)
          .with_block_stride(rows * kD);
  bruck::coll::AlltoallOptions options;
  options.algorithm = bruck::coll::IndexAlgorithm::kBruck;
  options.radix = 2;
  for (auto _ : state) {
    bruck::mps::FabricOptions fabric;
    fabric.n = n;
    fabric.k = 2;
    fabric.record_trace = false;
    bruck::mps::run_spmd(fabric, [&](bruck::mps::Communicator& comm) {
      std::vector<std::byte> send(static_cast<std::size_t>(slab_bytes),
                                  std::byte{1});
      std::vector<std::byte> recv(send.size());
      if (staged) {
        bruck::coll::alltoall_staged(comm, send, recv, lay, lay, options);
      } else {
        bruck::coll::alltoall(comm, send, recv, lay, lay, options);
      }
    });
  }
  state.SetLabel(staged ? "staged" : "zero-copy");
  state.counters["per_rank_bytes"] = static_cast<double>(slab_bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          (n - 1) * tile_bytes);
}

// Combine kernels: the typed vectorizable loops (kAlignedVector dispatch)
// vs the preserved pre-SIMD per-element memcpy round trip
// (combine_elementwise_reference) on contiguous f32/f64 sums.
// range = {bytes, elem (0 = f32, 1 = f64), reference}.
// Hierarchical leader model (the CI hier CSV artifact): the same alltoall
// geometry flat vs forced two-level at several group sizes.  The threaded
// substrate's links are uniform, so wall-clock favors flat here; the
// counters carry the skewed-machine (shm-like intra over socket-like
// inter) model prediction next to the measured time, so the CSV shows
// both sides of the tuner's trade.  range = {b, group (0 = flat)}.
void BM_HierAlltoall(benchmark::State& state) {
  const std::int64_t n = 8;
  const std::int64_t b = state.range(0);
  const std::int64_t group = state.range(1);
  bruck::coll::AlltoallOptions options;
  options.path = bruck::coll::ExecutionPath::kCompiled;
  options.hier =
      group > 0 ? bruck::coll::HierMode::kOn : bruck::coll::HierMode::kOff;
  options.hier_group = group;
  for (auto _ : state) {
    bruck::mps::FabricOptions fabric;
    fabric.n = n;
    fabric.k = 2;
    fabric.record_trace = false;
    bruck::mps::run_spmd(fabric, [&](bruck::mps::Communicator& comm) {
      std::vector<std::byte> send(static_cast<std::size_t>(n * b),
                                  std::byte{1});
      std::vector<std::byte> recv(send.size());
      bruck::coll::alltoall(comm, send, recv, b, options);
    });
  }
  state.SetLabel(group > 0 ? "hier/g=" + std::to_string(group) : "flat");
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          (n - 1) * b);
  const bruck::model::HierChoice skewed = bruck::model::pick_index_plan(
      n, 2, b, bruck::model::shm_socket_two_level(),
      bruck::model::RadixSet::kAll, group);
  state.counters["model_flat_us"] = skewed.flat_us;
  state.counters["model_hier_us"] = skewed.hier_us;
}

void BM_CombineKernels(benchmark::State& state) {
  const std::int64_t bytes = state.range(0);
  const bruck::coll::ReduceElem elem = state.range(1) == 0
                                           ? bruck::coll::ReduceElem::kF32
                                           : bruck::coll::ReduceElem::kF64;
  const bool reference = state.range(2) != 0;
  const bruck::coll::ReduceOp op = bruck::coll::ReduceOp::sum(elem);
  std::vector<std::byte> acc(static_cast<std::size_t>(bytes), std::byte{1});
  std::vector<std::byte> in(acc.size(), std::byte{2});
  for (auto _ : state) {
    if (reference) {
      bruck::coll::combine_elementwise_reference(op, acc.data(), in.data(),
                                                 bytes);
    } else {
      op.combine(acc.data(), in.data(), bytes);
    }
    benchmark::DoNotOptimize(acc.data());
    benchmark::ClobberMemory();
  }
  state.SetLabel(std::string(op.name()) +
                 (reference ? "/reference" : "/simd"));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          bytes);
}

}  // namespace

namespace {
constexpr std::int64_t kCompiledPath =
    static_cast<std::int64_t>(bruck::coll::ExecutionPath::kCompiled);
constexpr std::int64_t kPipelinedPath =
    static_cast<std::int64_t>(bruck::coll::ExecutionPath::kPipelined);
}  // namespace

// Multi-tenancy (the CI multi-tenant CSV artifact): batched vs serial
// same-geometry 4 KiB alltoalls (each rank's send buffer is n·b = 4 KiB,
// b = 512 across n = 8) at k = 1 — the small-message regime batching
// targets.  The 4096-block rows sit past the BRUCK_FUSE_MAX_BLOCK cap and
// pin the serial-fallback overhead of routing through the engine instead.
BENCHMARK(BM_ConcurrentAlltoall)
    ->Args({512, 4, 0})
    ->Args({512, 4, 1})
    ->Args({512, 8, 0})
    ->Args({512, 8, 1})
    ->Args({4096, 4, 0})
    ->Args({4096, 4, 1})
    ->Unit(benchmark::kMicrosecond)
    ->UseManualTime()
    ->MinWarmUpTime(0.05)
    ->MinTime(0.25);

// Datatype family (the CI datatype CSV artifact): zero-copy strided
// layouts vs user-side staging on the transpose geometry (n_dim = 512 is
// the acceptance point — 256 KiB per rank), and the SIMD combine kernels
// vs the pre-SIMD reference loop at 64 KiB and 256 KiB.
BENCHMARK(BM_StridedAlltoall)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Unit(benchmark::kMicrosecond)
    ->MinWarmUpTime(0.05)
    ->MinTime(0.25);

BENCHMARK(BM_CombineKernels)
    ->Args({1 << 16, 0, 0})
    ->Args({1 << 16, 0, 1})
    ->Args({1 << 16, 1, 0})
    ->Args({1 << 16, 1, 1})
    ->Args({1 << 18, 1, 0})
    ->Args({1 << 18, 1, 1})
    ->MinWarmUpTime(0.05)
    ->MinTime(0.25);

// Hierarchical family (the CI hier CSV artifact): flat vs leader-model at
// skewed intra/inter model costs, small and large blocks.
BENCHMARK(BM_HierAlltoall)
    ->Args({512, 0})
    ->Args({512, 2})
    ->Args({512, 4})
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 4})
    ->Unit(benchmark::kMicrosecond)
    ->MinWarmUpTime(0.05)
    ->MinTime(0.25);

// Reduction family (the CI reduction CSV artifact).
BENCHMARK(BM_ReduceScatterExecutor)
    ->Args({1 << 16, kCompiledPath, 1})
    ->Args({1 << 16, kPipelinedPath, 1})
    ->Args({1 << 16, kPipelinedPath, 8})
    ->Args({1 << 18, kCompiledPath, 1})
    ->Args({1 << 18, kPipelinedPath, 1})
    ->Args({1 << 18, kPipelinedPath, 8})
    ->Unit(benchmark::kMicrosecond)
    ->MinWarmUpTime(0.05)
    ->MinTime(0.25);

BENCHMARK(BM_AllreduceFusedVsGatherReduce)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 0})
    ->Args({1 << 18, 1})
    ->Args({1 << 18, 0})
    ->Unit(benchmark::kMicrosecond)
    ->MinWarmUpTime(0.05)
    ->MinTime(0.25);

// Executor comparison, segmented large blocks (the CI CSV artifact's
// pipelined-vs-PR1 perf trajectory).
BENCHMARK(BM_AlltoallExecutor)
    ->Args({1 << 16, kCompiledPath, 1})
    ->Args({1 << 16, kPipelinedPath, 1})
    ->Args({1 << 16, kPipelinedPath, 8})
    ->Args({1 << 18, kCompiledPath, 1})
    ->Args({1 << 18, kPipelinedPath, 1})
    ->Args({1 << 18, kPipelinedPath, 8})
    ->Unit(benchmark::kMicrosecond)
    ->MinWarmUpTime(0.05)
    ->MinTime(0.25);

BENCHMARK(BM_AllgatherExecutor)
    ->Args({1 << 16, kCompiledPath, 1})
    ->Args({1 << 16, kPipelinedPath, 1})
    ->Args({1 << 16, kPipelinedPath, 8})
    ->Unit(benchmark::kMicrosecond)
    ->MinWarmUpTime(0.05)
    ->MinTime(0.25);

// Index: the radix trade-off in wall-clock at n = 8 and n = 16 ranks.
BENCHMARK(BM_IndexBruck)
    ->Args({8, 64, 2})
    ->Args({8, 64, 8})
    ->Args({8, 65536, 2})
    ->Args({8, 65536, 8})
    ->Args({16, 4096, 2})
    ->Args({16, 4096, 4})
    ->Args({16, 4096, 16})
    ->Unit(benchmark::kMicrosecond)
    ->MinWarmUpTime(0.05)
    ->MinTime(0.25);

// Allgather: algorithm comparison at n = 16 ranks.
BENCHMARK(BM_AllgatherAlgorithms)
    ->Args({16, 4096, static_cast<std::int64_t>(bruck::coll::ConcatAlgorithm::kBruck)})
    ->Args({16, 4096, static_cast<std::int64_t>(bruck::coll::ConcatAlgorithm::kFolklore)})
    ->Args({16, 4096, static_cast<std::int64_t>(bruck::coll::ConcatAlgorithm::kRing)})
    ->Args({16, 64, static_cast<std::int64_t>(bruck::coll::ConcatAlgorithm::kBruck)})
    ->Args({16, 64, static_cast<std::int64_t>(bruck::coll::ConcatAlgorithm::kRing)})
    ->Unit(benchmark::kMicrosecond)
    ->MinWarmUpTime(0.05)
    ->MinTime(0.25);

BENCHMARK_MAIN();
