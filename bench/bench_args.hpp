// Common command-line handling for the bench binaries:
//   --smoke        shrink the sweeps for CI (seconds, not minutes)
//   --csv <path>   additionally emit machine-readable rows (util/csv.hpp)
// Unknown flags abort with a usage message so CI typos fail loudly.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

namespace bruck::bench {

struct BenchArgs {
  bool smoke = false;
  std::string csv_path;
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--csv" && i + 1 < argc) {
      args.csv_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--csv <path>]\n";
      std::exit(2);
    }
  }
  return args;
}

/// Open the CSV sink (std::ofstream stays closed when no path was given;
/// callers guard emission on is_open()).
inline std::ofstream open_csv(const BenchArgs& args) {
  std::ofstream out;
  if (!args.csv_path.empty()) {
    out.open(args.csv_path);
    if (!out) {
      std::cerr << "cannot open csv output: " << args.csv_path << "\n";
      std::exit(2);
    }
  }
  return out;
}

}  // namespace bruck::bench
