// Scale study (closed-form): how the paper's quantities behave as the
// machine grows beyond the 64 nodes of the SP-1 — the regime the
// algorithms were designed for ("scalable parallel computers").  All values
// are exact closed-form measures (no execution), so this sweeps to n = 4096
// instantly.
//
// Series reported:
//  * C1/C2 of the two index extremes and the tuned radix vs n,
//  * the tuned radix itself vs n for several block sizes,
//  * the r=2 / r=n crossover block size vs n,
//  * concatenation optimality (both bounds met) spot-checked at scale.
#include <cstdint>
#include <iostream>

#include "model/costs.hpp"
#include "model/linear_model.hpp"
#include "model/lower_bounds.hpp"
#include "model/tuner.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

int main() {
  const bruck::model::LinearModel sp1 = bruck::model::ibm_sp1();

  std::cout << "index operation at scale (b = 64 bytes, k = 1, SP-1 model)\n\n";
  bruck::TextTable t({"n", "r=2 C1", "r=2 C2", "r=n C1", "r=n C2", "tuned r",
                      "tuned us", "r=2 us", "r=n us"});
  for (std::int64_t n = 16; n <= 4096; n *= 4) {
    const auto m2 = bruck::model::index_bruck_cost(n, 2, 1, 64);
    const auto mn = bruck::model::index_bruck_cost(n, n, 1, 64);
    const auto best = bruck::model::pick_index_radix(n, 1, 64, sp1);
    t.add(n, m2.c1, m2.c2, mn.c1, mn.c2, best.radix, best.predicted_us,
          sp1.predict_us(m2), sp1.predict_us(mn));
  }
  t.print(std::cout);
  std::cout << "\nthe tuned radix buys more as n grows: the r = n extreme "
               "degrades linearly while the tuned curve stays near-log.\n\n";

  std::cout << "tuned radix vs n and block size (k = 1, SP-1 model)\n\n";
  bruck::TextTable r({"n", "b=16", "b=128", "b=1024", "b=8192"});
  for (std::int64_t n = 16; n <= 2048; n *= 2) {
    std::vector<std::string> row{std::to_string(n)};
    for (const std::int64_t b : {16, 128, 1024, 8192}) {
      row.push_back(std::to_string(
          bruck::model::pick_index_radix(n, 1, b, sp1).radix));
    }
    r.add_row(std::move(row));
  }
  r.print(std::cout);

  std::cout << "\nr=2 / r=n crossover block size vs n (SP-1 model)\n\n";
  bruck::TextTable c({"n", "crossover bytes"});
  for (std::int64_t n = 8; n <= 2048; n *= 2) {
    c.add(n, bruck::model::crossover_block_bytes(n, 1, 2, n, sp1));
  }
  c.print(std::cout);
  std::cout << "\nthe crossover shrinks slowly with n: start-up savings of "
               "log-round schedules amortize over more data as the machine "
               "grows.\n\n";

  std::cout << "concatenation optimality at scale (b = 4):\n\n";
  bruck::TextTable co({"n", "k", "C1", "C1 bound", "C2", "C2 bound"});
  for (const std::int64_t n : {256, 1000, 1024, 2401, 4096}) {
    for (const int k : {1, 2, 4, 6}) {
      const auto m = bruck::model::concat_bruck_cost(
          n, k, 4, bruck::model::ConcatLastRound::kAuto);
      co.add(n, k, m.c1, bruck::model::concat_c1_lower_bound(n, k), m.c2,
             bruck::model::concat_c2_lower_bound(n, k, 4));
      BRUCK_ENSURE(m.c1 == bruck::model::concat_c1_lower_bound(n, k) ||
                   bruck::model::concat_paper_nonoptimal_range(n, k, 4));
    }
  }
  co.print(std::cout);
  std::cout << "\nboth bounds met at every sampled scale point outside the "
               "paper's non-optimal range.\n";
  return 0;
}
