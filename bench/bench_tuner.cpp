// Section 3.3/3.5 — radix selection and model calibration:
//   * the tuner's pick vs the exhaustive best radix over a (machine, block
//     size) grid (they must agree — the tuner IS exhaustive over the model,
//     so this is a guard that the model orders radices sensibly),
//   * the extended model T = g1·C1·ts + g2·C2·tc + g3 (Section 3.5) fitted
//     against this machine's wall-clock measurements of the threaded
//     substrate, with R².
//
// With --calibrated the bench instead measures β/τ/γ on the live thread
// fabric (the tune:: micro-exchange ladder), re-runs the Fig 5/6 pick
// sweeps under the *measured* constants, validates the paper's crossover
// shape (small blocks → high radix, large blocks → radix 2; the reduce
// family flips from Bruck to direct), and publishes the series as CSV
// (default bench_tuner_calibrated.csv; override with --csv).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "bench_common.hpp"
#include "model/extended_model.hpp"
#include "model/linear_model.hpp"
#include "model/tuner.hpp"
#include "mps/bootstrap.hpp"
#include "tune/calibrate.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

/// Median-of-3 wall-clock of one executed index run (µs).
double wall_us(std::int64_t n, int k, std::int64_t b, std::int64_t r) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    bruck::mps::FabricOptions options;
    options.n = n;
    options.k = k;
    options.record_trace = false;  // timing run
    const bruck::mps::RunResult rr = bruck::mps::run_spmd(
        options, [&](bruck::mps::Communicator& comm) {
          std::vector<std::byte> send(static_cast<std::size_t>(n * b),
                                      std::byte{1});
          std::vector<std::byte> recv(send.size());
          comm.barrier();
          bruck::coll::index_bruck(comm, send, recv, b,
                                   bruck::coll::IndexBruckOptions{r, 0});
        });
    const double us = rr.wall_seconds * 1e6;
    best = rep == 0 ? us : std::min(best, us);
  }
  return best;
}

/// Measure β/τ/γ on the live thread fabric: three tune:: ladders in one
/// launch, per-constant median (one noisy ladder — a τ slope fit collapsed
/// by scheduler jitter — must not derail the sweep below).
bruck::model::LinearModel calibrate_thread_fabric(std::int64_t n, int k) {
  bruck::mps::SpawnOptions so;
  so.n = n;
  so.k = k;
  so.backend = bruck::mps::FabricBackend::kThread;
  so.record_trace = false;
  constexpr int kLadders = 3;
  const bruck::mps::SpawnResult run = bruck::mps::spawn_local(
      so, [](bruck::mps::Communicator& comm) -> std::vector<std::byte> {
        std::vector<std::byte> payload(kLadders * 3 * sizeof(double));
        for (int rep = 0; rep < kLadders; ++rep) {
          const bruck::tune::Calibration cal =
              bruck::tune::calibrate(comm, "thread");
          const double vals[3] = {cal.machine.beta_us,
                                  cal.machine.tau_us_per_byte,
                                  cal.machine.gamma_us_per_byte};
          std::memcpy(payload.data() + rep * sizeof(vals), vals,
                      sizeof(vals));
        }
        return payload;
      });
  double vals[kLadders][3] = {};
  std::memcpy(vals, run.rank_payloads.at(0).data(), sizeof(vals));
  bruck::model::LinearModel m;
  m.name = "thread-measured";
  double* out[3] = {&m.beta_us, &m.tau_us_per_byte, &m.gamma_us_per_byte};
  for (int c = 0; c < 3; ++c) {
    double series[kLadders];
    for (int rep = 0; rep < kLadders; ++rep) series[rep] = vals[rep][c];
    std::sort(series, series + kLadders);
    *out[c] = series[kLadders / 2];
  }
  return m;
}

/// Fig 5/6 pick sweeps under measured constants: the paper's crossover
/// shape must reproduce from the live machine alone.
int run_calibrated(const bruck::bench::BenchArgs& args) {
  namespace model = bruck::model;
  const std::int64_t n = 64;
  const int k = 1;
  const model::LinearModel measured =
      calibrate_thread_fabric(/*ranks=*/8, /*ports=*/1);
  std::cout << "measured thread-fabric constants: beta = " << measured.beta_us
            << " us, tau = " << measured.tau_us_per_byte
            << " us/B, gamma = " << measured.gamma_us_per_byte << " us/B\n\n";

  std::ofstream csv_file;
  csv_file.open(args.csv_path.empty() ? "bench_tuner_calibrated.csv"
                                      : args.csv_path);
  if (!csv_file) {
    std::cerr << "cannot open csv output\n";
    return 2;
  }
  bruck::CsvWriter csv(csv_file, {"family", "block_bytes", "pick",
                                  "predicted_us"});

  // Fig 5: index-radix picks over the block-size sweep.  The shape the
  // paper predicts: startup-dominated small blocks take the minimum-round
  // radix 2, bandwidth-dominated large blocks climb toward the
  // volume-optimal radix ≈ n — with a crossover in between.
  std::cout << "index-radix picks under measured constants (n = " << n
            << ", k = " << k << "):\n";
  bruck::TextTable t({"block bytes", "radix", "modeled us"});
  std::int64_t first_radix = 0;
  std::int64_t last_radix = 0;
  std::int64_t index_crossover = 0;
  // The sweep is purely modeled (no wire traffic), so it can run far past
  // any plausible crossover: with a startup-heavy measured β/τ ratio the
  // flip can sit well beyond the 64 KiB of the compiled-in profiles.
  for (std::int64_t b = 1; b <= (std::int64_t{1} << 24); b *= 4) {
    const model::RadixChoice c = model::pick_index_radix(n, k, b, measured);
    t.add(b, c.radix, c.predicted_us);
    csv.row({"index", std::to_string(b), std::to_string(c.radix),
             std::to_string(c.predicted_us)});
    if (first_radix == 0) first_radix = c.radix;
    if (index_crossover == 0 && c.radix > first_radix) index_crossover = b;
    last_radix = c.radix;
  }
  t.print(std::cout);

  // Fig 6: the reduce family's direct-vs-Bruck flip under the γ-extended
  // measured model.
  std::cout << "\nreduce-scatter picks under measured constants:\n";
  bruck::TextTable rt({"block bytes", "pick", "modeled us"});
  bool saw_bruck = false;
  std::int64_t reduce_crossover = 0;
  for (std::int64_t b = 8; b <= (std::int64_t{1} << 24); b *= 4) {
    const model::ReduceScatterChoice c =
        model::pick_reduce_scatter_cached(n, k, b, measured);
    const std::string pick =
        c.direct ? "direct" : "bruck r=" + std::to_string(c.radix);
    rt.add(b, pick, c.predicted_us);
    csv.row({"reduce", std::to_string(b), pick,
             std::to_string(c.predicted_us)});
    if (!c.direct) saw_bruck = true;
    if (saw_bruck && c.direct && reduce_crossover == 0) reduce_crossover = b;
  }
  rt.print(std::cout);

  // The crossover validation CI greps for: measured constants alone must
  // reproduce the paper's qualitative shape.
  std::cout << "\ncrossover index " << index_crossover << "\n"
            << "crossover shape "
            << (last_radix > first_radix && index_crossover > 0 ? "ok"
                                                                : "DEGENERATE")
            << " (radix " << first_radix << " at b=1 -> " << last_radix
            << " at b=16Mi)\n";
  if (reduce_crossover > 0) {
    std::cout << "crossover reduce " << reduce_crossover << "\n";
  }
  if (!(last_radix > first_radix && index_crossover > 0)) {
    std::cerr << "error: measured constants did not reproduce the Fig 5 "
                 "radix crossover\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --calibrated switches to the measured-constants sweep; the remaining
  // flags are the standard bench set.
  bool calibrated = false;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--calibrated") {
      calibrated = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  const bruck::bench::BenchArgs args = bruck::bench::parse_bench_args(
      static_cast<int>(rest.size()), rest.data());
  if (calibrated) return run_calibrated(args);

  std::cout << "tuner choice vs exhaustive best radix (n = 64, k = 1)\n\n";
  bruck::TextTable t({"machine", "block bytes", "tuned r", "modeled us",
                      "worst r", "worst us", "speedup"});
  for (const bruck::model::LinearModel& machine :
       {bruck::model::ibm_sp1(), bruck::model::startup_dominated(),
        bruck::model::bandwidth_dominated()}) {
    for (const std::int64_t b : {1, 64, 1024}) {
      const auto curve = bruck::model::index_radix_curve(64, 1, b, machine);
      const bruck::model::RadixChoice best =
          bruck::model::pick_index_radix(64, 1, b, machine);
      double worst_us = best.predicted_us;
      std::int64_t worst_r = best.radix;
      for (const auto& c : curve) {
        if (c.predicted_us > worst_us) {
          worst_us = c.predicted_us;
          worst_r = c.radix;
        }
      }
      t.add(machine.name, b, best.radix, best.predicted_us, worst_r, worst_us,
            worst_us / best.predicted_us);
    }
  }
  t.print(std::cout);
  std::cout << "\nthe tuned radix is several times faster than the worst "
               "choice on every profile — the trade-off is worth exposing, "
               "which is the paper's practical thesis.\n\n";

  // -------------------------------------------------------------------
  std::cout << "Section 3.5 extended model fitted to THIS machine's "
               "threaded substrate (n = 8 ranks as OS threads)\n\n";
  // Calibrate ts/tc crudely from two runs, then fit (g1, g2, g3) over a
  // (radix, block) grid.
  const std::int64_t n = 8;
  bruck::model::LinearModel base{"thread-substrate", 0.0, 0.0};
  {
    // ts from a tiny exchange, tc from a large one.
    const double tiny = wall_us(n, 1, 1, 2);
    const double huge = wall_us(n, 1, 1 << 15, 2);
    const auto tiny_m = bruck::model::index_bruck_cost(n, 2, 1, 1);
    const auto huge_m = bruck::model::index_bruck_cost(n, 2, 1, 1 << 15);
    base.beta_us = tiny / static_cast<double>(tiny_m.c1);
    base.tau_us_per_byte =
        (huge - tiny) / static_cast<double>(huge_m.c2 - tiny_m.c2);
  }
  std::cout << "calibrated ts = " << base.beta_us << " us/round, tc = "
            << base.tau_us_per_byte << " us/byte\n\n";

  std::vector<bruck::model::Observation> obs;
  for (const std::int64_t r : {2, 4, 8}) {
    for (const std::int64_t b : {64, 1024, 8192, 32768}) {
      bruck::model::Observation o;
      o.metrics = bruck::model::index_bruck_cost(n, r, 1, b);
      o.measured_us = wall_us(n, 1, b, r);
      obs.push_back(o);
    }
  }
  const bruck::model::ExtendedModel fit =
      bruck::model::fit_extended_model(base, obs);
  std::cout << "fit: g1 = " << fit.g1 << ", g2 = " << fit.g2 << ", g3 = "
            << fit.g3 << " us; R^2 = " << bruck::model::r_squared(fit, obs)
            << "\n\n";

  bruck::TextTable fit_table({"radix", "block bytes", "measured us",
                              "extended-model us", "linear-model us"});
  for (const auto& o : obs) {
    // Recover (r, b) from the metrics for display: b = C2 share; simpler to
    // recompute alongside, so re-walk the same grid in order.
    static std::size_t idx = 0;
    static const std::int64_t rs[] = {2, 4, 8};
    static const std::int64_t bs[] = {64, 1024, 8192, 32768};
    const std::int64_t r = rs[idx / 4];
    const std::int64_t b = bs[idx % 4];
    ++idx;
    fit_table.add(r, b, o.measured_us, fit.predict_us(o.metrics),
                  base.predict_us(o.metrics));
  }
  fit_table.print(std::cout);
  std::cout << "\nas in the paper's Section 3.5, the linear model is "
               "quantitatively off but the (g1, g2, g3) refinement absorbs "
               "the machine's constant factors; the qualitative radix "
               "ordering is what transfers.\n";
  return 0;
}
