// Section 3.3/3.5 — radix selection and model calibration:
//   * the tuner's pick vs the exhaustive best radix over a (machine, block
//     size) grid (they must agree — the tuner IS exhaustive over the model,
//     so this is a guard that the model orders radices sensibly),
//   * the extended model T = g1·C1·ts + g2·C2·tc + g3 (Section 3.5) fitted
//     against this machine's wall-clock measurements of the threaded
//     substrate, with R².
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "model/extended_model.hpp"
#include "model/linear_model.hpp"
#include "model/tuner.hpp"
#include "util/table.hpp"

namespace {

/// Median-of-3 wall-clock of one executed index run (µs).
double wall_us(std::int64_t n, int k, std::int64_t b, std::int64_t r) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    bruck::mps::FabricOptions options;
    options.n = n;
    options.k = k;
    options.record_trace = false;  // timing run
    const bruck::mps::RunResult rr = bruck::mps::run_spmd(
        options, [&](bruck::mps::Communicator& comm) {
          std::vector<std::byte> send(static_cast<std::size_t>(n * b),
                                      std::byte{1});
          std::vector<std::byte> recv(send.size());
          comm.barrier();
          bruck::coll::index_bruck(comm, send, recv, b,
                                   bruck::coll::IndexBruckOptions{r, 0});
        });
    const double us = rr.wall_seconds * 1e6;
    best = rep == 0 ? us : std::min(best, us);
  }
  return best;
}

}  // namespace

int main() {
  std::cout << "tuner choice vs exhaustive best radix (n = 64, k = 1)\n\n";
  bruck::TextTable t({"machine", "block bytes", "tuned r", "modeled us",
                      "worst r", "worst us", "speedup"});
  for (const bruck::model::LinearModel& machine :
       {bruck::model::ibm_sp1(), bruck::model::startup_dominated(),
        bruck::model::bandwidth_dominated()}) {
    for (const std::int64_t b : {1, 64, 1024}) {
      const auto curve = bruck::model::index_radix_curve(64, 1, b, machine);
      const bruck::model::RadixChoice best =
          bruck::model::pick_index_radix(64, 1, b, machine);
      double worst_us = best.predicted_us;
      std::int64_t worst_r = best.radix;
      for (const auto& c : curve) {
        if (c.predicted_us > worst_us) {
          worst_us = c.predicted_us;
          worst_r = c.radix;
        }
      }
      t.add(machine.name, b, best.radix, best.predicted_us, worst_r, worst_us,
            worst_us / best.predicted_us);
    }
  }
  t.print(std::cout);
  std::cout << "\nthe tuned radix is several times faster than the worst "
               "choice on every profile — the trade-off is worth exposing, "
               "which is the paper's practical thesis.\n\n";

  // -------------------------------------------------------------------
  std::cout << "Section 3.5 extended model fitted to THIS machine's "
               "threaded substrate (n = 8 ranks as OS threads)\n\n";
  // Calibrate ts/tc crudely from two runs, then fit (g1, g2, g3) over a
  // (radix, block) grid.
  const std::int64_t n = 8;
  bruck::model::LinearModel base{"thread-substrate", 0.0, 0.0};
  {
    // ts from a tiny exchange, tc from a large one.
    const double tiny = wall_us(n, 1, 1, 2);
    const double huge = wall_us(n, 1, 1 << 15, 2);
    const auto tiny_m = bruck::model::index_bruck_cost(n, 2, 1, 1);
    const auto huge_m = bruck::model::index_bruck_cost(n, 2, 1, 1 << 15);
    base.beta_us = tiny / static_cast<double>(tiny_m.c1);
    base.tau_us_per_byte =
        (huge - tiny) / static_cast<double>(huge_m.c2 - tiny_m.c2);
  }
  std::cout << "calibrated ts = " << base.beta_us << " us/round, tc = "
            << base.tau_us_per_byte << " us/byte\n\n";

  std::vector<bruck::model::Observation> obs;
  for (const std::int64_t r : {2, 4, 8}) {
    for (const std::int64_t b : {64, 1024, 8192, 32768}) {
      bruck::model::Observation o;
      o.metrics = bruck::model::index_bruck_cost(n, r, 1, b);
      o.measured_us = wall_us(n, 1, b, r);
      obs.push_back(o);
    }
  }
  const bruck::model::ExtendedModel fit =
      bruck::model::fit_extended_model(base, obs);
  std::cout << "fit: g1 = " << fit.g1 << ", g2 = " << fit.g2 << ", g3 = "
            << fit.g3 << " us; R^2 = " << bruck::model::r_squared(fit, obs)
            << "\n\n";

  bruck::TextTable fit_table({"radix", "block bytes", "measured us",
                              "extended-model us", "linear-model us"});
  for (const auto& o : obs) {
    // Recover (r, b) from the metrics for display: b = C2 share; simpler to
    // recompute alongside, so re-walk the same grid in order.
    static std::size_t idx = 0;
    static const std::int64_t rs[] = {2, 4, 8};
    static const std::int64_t bs[] = {64, 1024, 8192, 32768};
    const std::int64_t r = rs[idx / 4];
    const std::int64_t b = bs[idx % 4];
    ++idx;
    fit_table.add(r, b, o.measured_us, fit.predict_us(o.metrics),
                  base.predict_us(o.metrics));
  }
  fit_table.print(std::cout);
  std::cout << "\nas in the paper's Section 3.5, the linear model is "
               "quantitatively off but the (g1, g2, g3) refinement absorbs "
               "the machine's constant factors; the qualitative radix "
               "ordering is what transfers.\n";
  return 0;
}
