// Figure 5: "The measured times of the index algorithm with r = 2,
// r = n = 64, and optimal r among all power-of-two radices" — and the
// paper's headline observation that the r = 2 / r = 64 break-even sits at
// message sizes of about 100–200 bytes on the 64-node SP-1.
#include <cstdint>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "model/linear_model.hpp"
#include "model/tuner.hpp"
#include "util/table.hpp"

int main() {
  const std::int64_t n = 64;
  const int k = 1;
  const bruck::model::LinearModel sp1 = bruck::model::ibm_sp1();

  std::cout << "Figure 5 — r = 2 vs r = 64 vs best power-of-two radix, "
               "64-node SP-1 model\n\n";

  bruck::TextTable table({"block bytes", "us at r=2", "us at r=64",
                          "best pow2 r", "us at best", "winner"});
  for (const std::int64_t b :
       {1, 8, 16, 32, 64, 96, 128, 192, 256, 512, 1024, 4096}) {
    const double t2 =
        sp1.predict_us(bruck::bench::measure_index_bruck(n, k, b, 2));
    const double t64 =
        sp1.predict_us(bruck::bench::measure_index_bruck(n, k, b, 64));
    const bruck::model::RadixChoice best = bruck::model::pick_index_radix(
        n, k, b, sp1, bruck::model::RadixSet::kPowersOfTwo);
    const double tb =
        sp1.predict_us(bruck::bench::measure_index_bruck(n, k, b, best.radix));
    table.add(b, t2, t64, best.radix, tb,
              t2 < t64 ? std::string("r=2") : std::string("r=64"));
  }
  table.print(std::cout);

  const std::int64_t crossover =
      bruck::model::crossover_block_bytes(n, k, 2, 64, sp1);
  std::cout << "\nbreak-even between r=2 and r=64: " << crossover
            << "-byte blocks\n";
  std::cout << "paper reports ~100-200 bytes on SP-1 hardware; the linear "
               "model with the paper's (beta, tau) lands at "
            << crossover << " — same regime.\n";
  std::cout << "the tuned power-of-two radix is the best overall choice at "
               "every size (matching the paper's conclusion).\n";
  return 0;
}
