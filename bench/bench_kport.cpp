// Section 3.4 — the k-port generalization of the index algorithm:
// C1 ≈ ceil((r-1)/k)·ceil(log_r n) rounds, so ports divide the round count
// within each subphase; and Section 4's concatenation scales its volume as
// b(n-1)/k.  Sweeps k at n = 64 (n = 16 under --smoke) and shows the
// paper's advice that radices with (r-1) mod k == 0 waste no port slots.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "bench_common.hpp"
#include "model/lower_bounds.hpp"
#include "util/csv.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const bruck::bench::BenchArgs args = bruck::bench::parse_bench_args(argc, argv);
  std::ofstream csv_file = bruck::bench::open_csv(args);
  const std::int64_t n = args.smoke ? 16 : 64;
  const std::int64_t b = 8;
  const std::vector<int> index_ks =
      args.smoke ? std::vector<int>{1, 2, 3} : std::vector<int>{1, 2, 3, 4, 7};
  const std::vector<std::int64_t> concat_ns =
      args.smoke ? std::vector<std::int64_t>{16}
                 : std::vector<std::int64_t>{16, 27, 64};

  std::unique_ptr<bruck::CsvWriter> csv;
  if (csv_file.is_open()) {
    csv = std::make_unique<bruck::CsvWriter>(
        csv_file,
        std::vector<std::string>{"op", "n", "k", "r", "b", "c1", "c2"});
  }

  std::cout << "index operation, n = " << n << ", b = 8: C1/C2 vs ports k\n\n";
  bruck::TextTable t({"k", "r", "(r-1)%k", "C1", "C2", "C1 lower bound"});
  for (const int k : index_ks) {
    for (const std::int64_t r : {2, 4, 8, 5, 64}) {
      if (r > n) continue;
      const bruck::model::CostMetrics m =
          bruck::bench::measure_index_bruck(n, k, b, r);
      t.add(k, r, (r - 1) % k, m.c1, m.c2,
            bruck::model::index_c1_lower_bound(n, k));
      if (csv) {
        csv->row({"index_bruck", std::to_string(n), std::to_string(k),
                  std::to_string(r), std::to_string(b), std::to_string(m.c1),
                  std::to_string(m.c2)});
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nport-aligned radices ((r-1) mod k == 0) use every port in "
               "every round; misaligned ones leave slots idle in the final "
               "round of each subphase.\n\n";

  std::cout << "round-minimal choice r = k+1 vs ports (C1 = ceil(log_{k+1} "
            << n << ")):\n\n";
  bruck::TextTable tmin({"k", "r=k+1", "C1", "C1 bound", "C2",
                         "Thm 2.5 bound (n=(k+1)^d only)"});
  for (const int k : {1, 3, 7}) {
    const bruck::model::CostMetrics m =
        bruck::bench::measure_index_bruck(n, k, b, k + 1);
    std::string thm25 = "-";
    if (bruck::ipow(k + 1, bruck::ceil_log(n, k + 1)) == n) {
      thm25 = std::to_string(
          bruck::model::index_c2_bound_at_min_rounds(n, k, b));
    }
    tmin.add(k, k + 1, m.c1, bruck::model::index_c1_lower_bound(n, k), m.c2,
             thm25);
    if (csv) {
      csv->row({"index_bruck_rmin", std::to_string(n), std::to_string(k),
                std::to_string(k + 1), std::to_string(b),
                std::to_string(m.c1), std::to_string(m.c2)});
    }
  }
  tmin.print(std::cout);

  std::cout << "\nconcatenation, b = 8: measured C1/C2 vs ports\n\n";
  bruck::TextTable tc({"n", "k", "C1", "C1 bound", "C2", "C2 bound"});
  for (const std::int64_t cn : concat_ns) {
    for (const int k : {1, 2, 3, 4}) {
      const bruck::model::CostMetrics m = bruck::bench::measure_concat_bruck(
          cn, k, b, bruck::model::ConcatLastRound::kAuto);
      tc.add(cn, k, m.c1, bruck::model::concat_c1_lower_bound(cn, k), m.c2,
             bruck::model::concat_c2_lower_bound(cn, k, b));
      if (csv) {
        csv->row({"concat_bruck", std::to_string(cn), std::to_string(k), "-",
                  std::to_string(b), std::to_string(m.c1),
                  std::to_string(m.c2)});
      }
    }
  }
  tc.print(std::cout);
  std::cout << "\nvolume scales as b(n-1)/k and rounds as log_{k+1} n — "
               "both at their lower bounds.\n";
  return 0;
}
