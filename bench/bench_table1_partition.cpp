// Table 1: "An example of the transformed problem for n1 = 3, n2 = 7,
// b = 3 (bytes), and k = 3 (ports)" — the table-partitioning construction
// that schedules the last round of the concatenation (Proposition 4.2),
// plus the schedule the paper derives from it, plus a feasibility census
// of the construction across the (n, k, b) space.
#include <cstdint>
#include <iostream>
#include <map>

#include "model/costs.hpp"
#include "topo/partition.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main() {
  using bruck::topo::Area;
  using bruck::topo::AreaCell;
  using bruck::topo::TablePartition;

  std::cout << "Table 1 — last-round table partitioning for n1 = 3, n2 = 7, "
               "b = 3, k = 3\n\n";
  const TablePartition p = bruck::topo::byte_split_partition(3, 7, 3, 3);
  std::cout << p.render() << '\n';
  std::cout << "alpha (per-port byte budget) = " << p.alpha()
            << ", feasible = " << (p.feasible() ? "yes" : "no") << "\n\n";

  std::cout << "derived last-round schedule (per the paper's reading of the "
               "table):\n";
  for (std::size_t m = 0; m < p.areas.size(); ++m) {
    const Area& area = p.areas[m];
    const std::int64_t offset = 3 + area.left_col();
    std::cout << "  area A" << (m + 1) << " (offset " << offset << ", "
              << area.size() << " bytes):";
    std::map<std::int64_t, std::int64_t> per_col;
    for (const AreaCell& c : area.cells) per_col[c.col] += c.size();
    for (const auto& [col, bytes] : per_col) {
      std::cout << "  p" << (3 + col) << " gets " << bytes << " B from p"
                << (col - area.left_col());
    }
    std::cout << '\n';
  }
  std::cout << "\npaper: offsets 3, 5, 7 carrying 7 bytes each — matched "
               "cell for cell.\n\n";

  // -------------------------------------------------------------------
  std::cout << "feasibility census of the byte-split construction across "
               "the concatenation geometry\n"
               "(the paper claims failures confined to b >= 3, k >= 3, "
               "(k+1)^d - k < n < (k+1)^d):\n\n";
  bruck::TextTable census({"k", "b", "combos", "infeasible",
                           "all inside paper range?"});
  for (int k = 1; k <= 6; ++k) {
    for (std::int64_t b = 1; b <= 6; ++b) {
      std::int64_t combos = 0;
      std::int64_t infeasible = 0;
      bool contained = true;
      for (std::int64_t n = 2; n <= 400; ++n) {
        ++combos;
        if (!bruck::model::concat_byte_split_feasible(n, k, b)) {
          ++infeasible;
          if (!bruck::model::concat_paper_nonoptimal_range(n, k, b)) {
            contained = false;
          }
        }
      }
      census.add(k, b, combos, infeasible,
                 contained ? std::string("yes") : std::string("NO"));
    }
  }
  census.print(std::cout);
  std::cout << "\nevery infeasible instance lies inside the paper's stated "
               "range; b <= 2 and k <= 2 are fully optimal as claimed.\n";
  return 0;
}
