// Section 4 / Theorem 4.3: the concatenation algorithm's measured C1 and C2
// against the Section 2 lower bounds and against the folklore and ring
// baselines, across n and k — including the non-optimal range, where the
// two fallback strategies realize the two options of the paper's Remark.
// Also prints the Figures 7–8 circulant spanning trees.
#include <cstdint>
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "model/lower_bounds.hpp"
#include "topo/circulant.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

namespace {

void print_tree(const std::string& title,
                const std::vector<bruck::topo::TreeEdge>& edges) {
  std::cout << title << '\n';
  std::map<int, std::vector<std::string>> per_round;
  for (const bruck::topo::TreeEdge& e : edges) {
    per_round[e.round].push_back(std::to_string(e.parent) + "->" +
                                 std::to_string(e.child));
  }
  for (const auto& [round, list] : per_round) {
    std::cout << "  round " << round << ":";
    for (const std::string& s : list) std::cout << ' ' << s;
    std::cout << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "Figures 7-8 — circulant spanning trees, n = 9, k = 2\n\n";
  print_tree("T_0 (Figure 7):",
             bruck::topo::concat_full_spanning_tree(9, 2, 0));
  print_tree("T_1 (Figure 8, translation of T_0 by +1):",
             bruck::topo::concat_full_spanning_tree(9, 2, 1));

  std::cout << "Theorem 4.3 — measured C1/C2 of the concatenation vs lower "
               "bounds (b = 4 bytes)\n\n";
  const std::int64_t b = 4;
  bruck::TextTable table({"n", "k", "C1", "C1 bound", "C2", "C2 bound",
                          "optimal?", "in paper's range?"});
  for (const std::int64_t n : {2, 5, 8, 9, 16, 17, 26, 27, 28, 40, 64}) {
    for (const int k : {1, 2, 3, 4}) {
      const bruck::model::CostMetrics m = bruck::bench::measure_concat_bruck(
          n, k, b, bruck::model::ConcatLastRound::kAuto);
      const std::int64_t c1_lb = bruck::model::concat_c1_lower_bound(n, k);
      const std::int64_t c2_lb = bruck::model::concat_c2_lower_bound(n, k, b);
      const bool optimal = m.c1 == c1_lb && m.c2 == c2_lb;
      table.add(n, k, m.c1, c1_lb, m.c2, c2_lb,
                optimal ? std::string("yes") : std::string("no"),
                bruck::model::concat_paper_nonoptimal_range(n, k, b)
                    ? std::string("yes")
                    : std::string("no"));
    }
  }
  table.print(std::cout);
  std::cout << "\n(\"no\" in the optimal column may appear only where the "
               "range column says \"yes\")\n\n";

  // n = 15, k = 3, b = 3 sits in the paper's range AND is genuinely
  // infeasible for the byte-split construction (the middle area would span
  // 5 columns against n1 = 4); bounds are C1 = 2, C2 = 14.
  std::cout << "the Remark's two fallbacks on an infeasible instance "
               "(n = 15, k = 3, b = 3; bounds C1 = 2, C2 = 14):\n\n";
  bruck::TextTable remark({"strategy", "C1", "C2", "note"});
  {
    const bool feasible = bruck::model::concat_byte_split_feasible(15, 3, 3);
    std::cout << "  byte-split feasible here? " << (feasible ? "yes" : "no")
              << "\n\n";
    const auto cg = bruck::bench::measure_concat_bruck(
        15, 3, 3, bruck::model::ConcatLastRound::kColumnGranular);
    remark.add("column-granular", cg.c1, cg.c2,
               "optimal C1, C2 <= bound + b-1");
    const auto tr = bruck::bench::measure_concat_bruck(
        15, 3, 3, bruck::model::ConcatLastRound::kTwoRound);
    remark.add("two-round", tr.c1, tr.c2, "optimal C2, C1 = bound + 1");
  }
  remark.print(std::cout);

  std::cout << "\nbaseline comparison at k = 1 (b = 4 bytes):\n\n";
  bruck::TextTable base({"n", "bruck C1", "bruck C2", "folklore C1",
                         "folklore C2", "ring C1", "ring C2"});
  for (const std::int64_t n : {8, 16, 27, 32, 64}) {
    const auto bm = bruck::bench::measure_concat_bruck(
        n, 1, b, bruck::model::ConcatLastRound::kAuto);
    const auto fm = bruck::bench::measure_concat_folklore(n, b);
    const auto rm = bruck::bench::measure_concat_ring(n, b);
    base.add(n, bm.c1, bm.c2, fm.c1, fm.c2, rm.c1, rm.c2);
  }
  base.print(std::cout);
  std::cout << "\nBruck dominates: folklore's rounds and volume are both "
               "larger; the ring matches the volume but needs n-1 rounds.\n";
  return 0;
}
